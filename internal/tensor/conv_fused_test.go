package tensor

import (
	"math/rand"
	"testing"
)

// convFusedShape is a Conv2DInfer problem instance used by the fused
// im2col tests. Every shape must be fused-eligible (its GEMM must route
// to the packed sweep), otherwise both toggle settings run the
// materialized path and the comparison is vacuous.
type convFusedShape struct {
	n, c, h, w, oc int
	o              ConvOpts
}

func convFusedShapes() []convFusedShape {
	return []convFusedShape{
		// Backbone-like: 3×3 stride-1 same-padding, square.
		{1, 16, 28, 28, 32, ConvOpts{Kernel: 3, Stride: 1, Padding: 1}},
		// Strided, non-square, ragged output dims.
		{1, 8, 33, 19, 40, ConvOpts{Kernel: 3, Stride: 2, Padding: 1}},
		// Large receptive field with heavy padding.
		{1, 3, 64, 64, 18, ConvOpts{Kernel: 5, Stride: 1, Padding: 2}},
		// Pointwise (1×1): the im2col walk degenerates to a row copy.
		{1, 64, 16, 16, 32, ConvOpts{Kernel: 1, Stride: 1, Padding: 0}},
		// No padding: interior-only taps, oh < h.
		{1, 12, 30, 30, 24, ConvOpts{Kernel: 3, Stride: 1, Padding: 0}},
		// Batched: per-item fused packing.
		{3, 16, 28, 28, 32, ConvOpts{Kernel: 3, Stride: 1, Padding: 1}},
	}
}

func (s convFusedShape) eligible() bool {
	oh, ow := s.o.OutDim(s.h), s.o.OutDim(s.w)
	kk := s.c * s.o.Kernel * s.o.Kernel
	return gemmUsesPacked(s.oc, oh*ow, kk)
}

// TestConvInferFusedMatchesMaterialized pins the fused im2col→packB
// inference path bit-identical to the materialized path (explicit column
// matrix then dense packB) across kernel geometries, strides, paddings
// and batch sizes, on every GEMM kernel available on this host. Packing
// B straight from the image must produce exactly the panel values packB
// reads out of the lowered matrix — zero padding, tail columns and all —
// so fusing changes memory traffic, never results.
func TestConvInferFusedMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	origKernel := GemmKernel()
	defer SetGemmKernel(origKernel)
	for _, kr := range availableKernels(t) {
		if _, err := SetGemmKernel(kr.name); err != nil {
			t.Fatalf("SetGemmKernel(%q): %v", kr.name, err)
		}
		for _, sh := range convFusedShapes() {
			if !sh.eligible() {
				t.Fatalf("shape %+v below the packed cutoff; enlarge it", sh)
			}
			x := New(sh.n, sh.c, sh.h, sh.w)
			wgt := New(sh.oc, sh.c, sh.o.Kernel, sh.o.Kernel)
			bias := New(sh.oc)
			fillRand(x, rng)
			fillRand(wgt, rng)
			fillRand(bias, rng)
			ep := Epilogue{Bias: bias, Act: true, Slope: 0.1}

			prev := SetConvFusedIm2col(false)
			want := Conv2DInfer(nil, x, wgt, sh.o, ep)
			SetConvFusedIm2col(true)
			got := Conv2DInfer(nil, x, wgt, sh.o, ep)
			SetConvFusedIm2col(prev)
			assertTensorBits(t, kr.name+" fused conv", want, got)
		}
	}
}

// TestConvInferFusedParityAcrossWorkerCounts re-checks the determinism
// contract on the fused path: a batched fused conv must be bit-identical
// at 1 and 8 workers (both the per-item batch fan-out and the
// column-block fan-out inside each GEMM are in play).
func TestConvInferFusedParityAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	sh := convFusedShape{4, 16, 28, 28, 32, ConvOpts{Kernel: 3, Stride: 1, Padding: 1}}
	x := New(sh.n, sh.c, sh.h, sh.w)
	wgt := New(sh.oc, sh.c, sh.o.Kernel, sh.o.Kernel)
	fillRand(x, rng)
	fillRand(wgt, rng)
	run := func() []float32 {
		out := Conv2DInfer(nil, x, wgt, sh.o, Epilogue{})
		return out.data
	}
	serial := runAtWorkers(1, run)
	par := runAtWorkers(8, run)
	assertBitIdentical(t, "fused conv", serial, par)
}

// TestConvInferFusedWorkspaceFootprint is the reclamation guard for the
// fused path: with fusing on, the workspace must never allocate the
// column-matrix size class at all — the arena retains only the output
// (plus smaller classes), so there is no dead multi-megabyte bin for
// Trim to carry. The materialized path at the same shape is measured as
// a contrast to prove the headroom is real, and steady-state fused
// passes must be allocation-free.
func TestConvInferFusedWorkspaceFootprint(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	sh := convFusedShape{1, 16, 28, 28, 32, ConvOpts{Kernel: 3, Stride: 1, Padding: 1}}
	if !sh.eligible() {
		t.Fatal("guard shape below the packed cutoff")
	}
	oh, ow := sh.o.OutDim(sh.h), sh.o.OutDim(sh.w)
	kk := sh.c * sh.o.Kernel * sh.o.Kernel
	colSize := sh.n * kk * oh * ow // floats the materialized path lowers into

	x := New(sh.n, sh.c, sh.h, sh.w)
	wgt := New(sh.oc, sh.c, sh.o.Kernel, sh.o.Kernel)
	fillRand(x, rng)
	fillRand(wgt, rng)

	prev := SetConvFusedIm2col(true)
	defer SetConvFusedIm2col(prev)

	ws := NewWorkspace()
	for pass := 0; pass < 2; pass++ {
		ws.Reset()
		Conv2DInfer(ws, x, wgt, sh.o, Epilogue{})
	}
	fused := ws.Footprint()
	if fused >= colSize {
		t.Fatalf("fused workspace footprint %d floats ≥ col size %d: column size class still allocated", fused, colSize)
	}

	wsMat := NewWorkspace()
	SetConvFusedIm2col(false)
	wsMat.Reset()
	Conv2DInfer(wsMat, x, wgt, sh.o, Epilogue{})
	SetConvFusedIm2col(true)
	materialized := wsMat.Footprint()
	if materialized < colSize {
		t.Fatalf("materialized footprint %d floats < col size %d: contrast measurement broken", materialized, colSize)
	}
	t.Logf("workspace footprint: fused %d floats vs materialized %d floats (col matrix %d)",
		fused, materialized, colSize)

	// Steady state: with the arena warm and the pack-buffer pool primed,
	// a fused inference conv performs zero heap allocations at one
	// worker (parallel fan-out legitimately allocates closure frames).
	allocs := runAtWorkers(1, func() float64 {
		return testing.AllocsPerRun(10, func() {
			ws.Reset()
			Conv2DInfer(ws, x, wgt, sh.o, Epilogue{})
		})
	})
	if allocs != 0 {
		t.Fatalf("fused Conv2DInfer steady state allocates %.1f times per run, want 0", allocs)
	}
}

// TestConvInferFusedRefinementShapes covers the refinement-stage conv
// population: small 7×7/4×4 spatial extents whose GEMMs sat below the
// old 2^17 routing cliff and therefore ran materialized im2col through
// the scalar row kernel. With the measured small-shape routing
// (gemmUsesPacked) they are fused-eligible, so the refinement path
// never materializes a column matrix: results stay bit-identical to the
// materialized path, the workspace never allocates the column size
// class, and steady-state passes are allocation-free.
func TestConvInferFusedRefinementShapes(t *testing.T) {
	const oldCliff = 1 << 17 // the pre-routing-rework packed cutoff
	rng := rand.New(rand.NewSource(59))
	shapes := []convFusedShape{
		// Inception 1×1 branch reductions on the 7×7 RoI grid.
		{4, 64, 7, 7, 32, ConvOpts{Kernel: 1, Stride: 1, Padding: 0}},
		{1, 64, 7, 7, 16, ConvOpts{Kernel: 1, Stride: 1, Padding: 0}},
		// 3×3 branch on the halved 4×4 grid.
		{1, 48, 4, 4, 16, ConvOpts{Kernel: 3, Stride: 1, Padding: 1}},
		// The profiled refinement trunk conv (m=12, n=16, k=108):
		// eligible only through the wide-m routing term — its 20736
		// flops sit below even the reworked unconditional cutoff.
		{1, 12, 4, 4, 12, ConvOpts{Kernel: 3, Stride: 1, Padding: 1}},
	}
	prev := SetConvFusedIm2col(true)
	defer SetConvFusedIm2col(prev)
	for _, sh := range shapes {
		oh, ow := sh.o.OutDim(sh.h), sh.o.OutDim(sh.w)
		kk := sh.c * sh.o.Kernel * sh.o.Kernel
		if !sh.eligible() {
			t.Fatalf("refinement shape %+v not fused-eligible", sh)
		}
		if flops := sh.oc * oh * ow * kk; flops >= oldCliff {
			t.Fatalf("refinement shape %+v (%d flops) was already above the old cliff; pick a smaller one", sh, flops)
		}
		x := New(sh.n, sh.c, sh.h, sh.w)
		wgt := New(sh.oc, sh.c, sh.o.Kernel, sh.o.Kernel)
		bias := New(sh.oc)
		fillRand(x, rng)
		fillRand(wgt, rng)
		fillRand(bias, rng)
		ep := Epilogue{Bias: bias, Act: true, Slope: 0.1}

		SetConvFusedIm2col(false)
		want := Conv2DInfer(nil, x, wgt, sh.o, ep)
		SetConvFusedIm2col(true)
		got := Conv2DInfer(nil, x, wgt, sh.o, ep)
		assertTensorBits(t, "refinement fused conv", want, got)

		colSize := sh.n * kk * oh * ow
		ws := NewWorkspace()
		for pass := 0; pass < 2; pass++ {
			ws.Reset()
			Conv2DInfer(ws, x, wgt, sh.o, ep)
		}
		if fp := ws.Footprint(); fp >= colSize {
			t.Fatalf("shape %+v: fused footprint %d floats ≥ col size %d: column class allocated", sh, fp, colSize)
		}
		allocs := runAtWorkers(1, func() float64 {
			return testing.AllocsPerRun(10, func() {
				ws.Reset()
				Conv2DInfer(ws, x, wgt, sh.o, ep)
			})
		})
		if allocs != 0 {
			t.Fatalf("shape %+v: steady state allocates %.1f times per run, want 0", sh, allocs)
		}
	}
}
