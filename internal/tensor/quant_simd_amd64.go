package tensor

import "rhsd/internal/cpu"

// quantSIMDWidth is the AVX2 quantize kernel's step: 32 floats in (four
// YMM vectors), 32 bytes out (one YMM store).
const quantSIMDWidth = 32

// quantSIMDAvailable gates the assembly path. Only AVX2 itself is
// required — the kernel uses no FMA — so it lights up on a strictly
// wider set of hosts than the avx2 GEMM micro-kernel.
var quantSIMDAvailable = cpu.X86.AVX2

// quantizeSliceAVX2 (quant_simd_amd64.s) quantizes n floats (n > 0, a
// multiple of quantSIMDWidth) from src into dst, bit-identical to
// quantizeSliceFastGo over the full float32 domain.
//
//go:noescape
func quantizeSliceAVX2(dst *uint8, src *float32, n int, rcp float32, zero int32)
