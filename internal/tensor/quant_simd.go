package tensor

import "math"

// Vectorizable activation quantization (the fp32→uint8 boundary every
// quantized conv crosses, DESIGN §17).
//
// The scalar reference (quant.go) divides in float64 and rounds to
// nearest even — exact, but a hard shape for SIMD: there is no packed
// float64 division worth its latency here and the per-element branch
// structure defeats vectorization. The fast path restates the same
// computation in the form VCVTPS2DQ evaluates natively:
//
//	q   = x · (1/Scale)          // float32 multiply, reciprocal hoisted
//	r   = roundToEven(q) + Zero  // float32 RNE → int32, then zero point
//	out = clamp(r, 0, ActQMax)   // NaN lanes forced to the zero point
//
// Before rounding, q is clamped to ±2^22: every float32 of magnitude
// ≥ 2^23 is already an integer (rounding would be the identity), the
// clamp gives ±Inf a finite path to the saturation ends, and 2^22
// keeps q + Zero comfortably inside int32. The portable twin below and
// the AVX2 kernel (quant_simd_amd64.s) are bit-identical over the full
// float32 domain — NaN payloads, ±Inf, denormals, ±0 and rounding
// boundaries included — pinned by TestQuantizeSliceFastParity.
//
// What changes versus the scalar reference is only the division: one
// float32 reciprocal-multiply (two roundings) in place of an exact
// division. For inputs that land within half an ulp of a round-to-even
// boundary the two can disagree by exactly one quantized step; the
// bound is pinned by TestQuantizeSliceFastVsExactTolerance and the
// end-to-end effect sits inside the int8 accuracy gate's budget.

// quantRoundBound is the float-domain clamp applied before rounding:
// beyond ±2^22 every representable float32 already exceeds the
// quantized range by orders of magnitude, so clamping cannot change
// results — it only bounds the int32 conversion and absorbs ±Inf.
const quantRoundBound = 1 << 22

// quantRecip returns the reciprocal the fast path multiplies by, and
// whether the fast path's contract holds: Scale and its reciprocal must
// both be normal float32 values, so the multiply introduces no
// denormal-precision loss beyond the documented one-step tolerance.
func quantRecip(scale float32) (float32, bool) {
	const minNormal = 0x1p-126
	a := scale
	if a < 0 {
		a = -a
	}
	if !(a >= minNormal) || math.IsInf(float64(a), 0) { // non-normal, NaN or Inf scale
		return 0, false
	}
	rcp := 1 / scale
	r := rcp
	if r < 0 {
		r = -r
	}
	if !(r >= minNormal) || math.IsInf(float64(r), 0) {
		return 0, false
	}
	return rcp, true
}

// quantizeSliceFast quantizes src into dst with the reciprocal-multiply
// formulation, dispatching to the AVX2 kernel when the host supports it
// and finishing (or, off amd64, running entirely) with the portable
// twin. The twin and the kernel are bit-identical, so the split point
// never shows in the output.
func quantizeSliceFast(dst []uint8, src []float32, rcp float32, zero uint8) {
	i := 0
	if n := len(src); n >= quantSIMDWidth && quantSIMDAvailable {
		i = n &^ (quantSIMDWidth - 1)
		quantizeSliceAVX2(&dst[0], &src[0], i, rcp, int32(zero))
	}
	quantizeSliceFastGo(dst[i:], src[i:], rcp, zero)
}

// quantizeSliceFastGo is the portable twin of the AVX2 kernel: same
// multiply, same clamp, same round-to-nearest-even, same NaN and
// saturation behavior, element by element.
func quantizeSliceFastGo(dst []uint8, src []float32, rcp float32, zero uint8) {
	zp := int32(zero)
	for i, x := range src {
		q := x * rcp
		if q != q { // NaN input (rcp is finite, so q is NaN iff x is)
			dst[i] = zero
			continue
		}
		if q > quantRoundBound {
			q = quantRoundBound
		} else if q < -quantRoundBound {
			q = -quantRoundBound
		}
		// Exact for |q| ≤ 2^22: rounding a float32 through float64 is
		// lossless, and RoundToEven of the float64 value is precisely
		// the RNE-to-integer conversion VCVTPS2DQ performs.
		r := int32(math.RoundToEven(float64(q))) + zp
		if r < 0 {
			r = 0
		} else if r > ActQMax {
			r = ActQMax
		}
		dst[i] = uint8(r)
	}
}
