package tensor

import (
	"sync/atomic"
	"time"
)

// Per-stage profiling counters for the inference hot path. The quant
// bench (`rhsd-bench -exp quant`) uses them to report where an int8
// Detect actually spends its time — so a claim like "gemmRows no longer
// dominates" is measured from stage counters, not asserted from kernel
// microbenchmarks.
//
// Design constraints, in order:
//
//   - Zero cost when off: every instrumented site pays one atomic bool
//     load and a predictable branch, nothing else. No timestamps are
//     taken and no allocation ever happens on either setting.
//   - Safe under the worker pool: counters are atomic adds, so stages
//     that run inside parallel.For (packed GEMM column blocks, batched
//     conv items) aggregate correctly. Consequently a stage's time is
//     CPU time summed across workers, which can exceed wall time on
//     multi-worker hosts; the bench reports shares of the summed
//     profile, which stays meaningful either way.
//   - Stages never nest: gemm_rows/gemm_packed/qgemm are leaf compute
//     sweeps, im2col instruments only the materialized lowering (the
//     fused path has no separate lowering to time) and quantize is the
//     int8 entry boundary. Shares therefore add up.

// profStage indexes one instrumented stage.
type profStage int

const (
	profGemmRows   profStage = iota // scalar row-kernel fp32 GEMM
	profGemmPacked                  // packed cache-blocked fp32 GEMM
	profQGemm                       // packed int8 GEMM sweep
	profIm2col                      // materialized im2col lowering
	profQuantize                    // fp32→uint8 activation quantization
	profStageCount
)

// profStageNames are the external names, in profStage order.
var profStageNames = [profStageCount]string{
	"gemm_rows",
	"gemm_packed",
	"qgemm",
	"im2col",
	"quantize",
}

var profEnabled atomic.Bool

// profCounters holds the accumulated nanoseconds and call counts per
// stage.
var profCounters [profStageCount]struct {
	ns    atomic.Int64
	calls atomic.Int64
}

// SetProfiling enables or disables stage profiling, returning the
// previous setting. Off is the default and costs one atomic load per
// instrumented call; on adds two monotonic clock reads per call.
func SetProfiling(on bool) (prev bool) {
	return profEnabled.Swap(on)
}

// ResetProfile zeroes all stage counters.
func ResetProfile() {
	for i := range profCounters {
		profCounters[i].ns.Store(0)
		profCounters[i].calls.Store(0)
	}
}

// ProfileEntry is one stage's accumulated time and call count.
type ProfileEntry struct {
	Stage string
	Ns    int64
	Calls int64
}

// ProfileSnapshot returns the current per-stage counters in stable
// (profStage) order, including stages with zero accumulated time.
func ProfileSnapshot() []ProfileEntry {
	out := make([]ProfileEntry, profStageCount)
	for i := range profCounters {
		out[i] = ProfileEntry{
			Stage: profStageNames[i],
			Ns:    profCounters[i].ns.Load(),
			Calls: profCounters[i].calls.Load(),
		}
	}
	return out
}

// ProfileScope accumulates the same per-stage counters as the global
// profile, but for one attributable unit of work — in practice one
// trace span (a megatile forward pass). The request tracer installs a
// scope on the model's Workspace before a pass and snapshots it after,
// so concurrent requests stop smearing each other's gemm/quantize time:
// each instrumented site adds the identical elapsed value to the global
// counters and to the lexically threaded scope, which makes per-scope
// sums equal the global snapshot delta exactly (pinned by
// TestProfileScopeParity).
//
// Counters are atomic because a scoped pass still fans batched conv
// items out over the worker pool; the scope pointer itself is threaded
// lexically (function arguments, captured by the parallel.For closures)
// rather than held in any package global, so two models inferring
// concurrently attribute to their own scopes with no cross-talk.
type ProfileScope struct {
	ns    [profStageCount]atomic.Int64
	calls [profStageCount]atomic.Int64
}

// Reset zeroes the scope's counters for reuse across passes.
func (s *ProfileScope) Reset() {
	for i := range s.ns {
		s.ns[i].Store(0)
		s.calls[i].Store(0)
	}
}

// Snapshot returns the scope's counters in the same stable order as
// ProfileSnapshot.
func (s *ProfileScope) Snapshot() []ProfileEntry {
	out := make([]ProfileEntry, profStageCount)
	for i := range s.ns {
		out[i] = ProfileEntry{
			Stage: profStageNames[i],
			Ns:    s.ns[i].Load(),
			Calls: s.calls[i].Load(),
		}
	}
	return out
}

// profStart samples the monotonic clock when profiling is on. The
// (enabled, t0) pair keeps the off-path to a single atomic load and
// lets profEnd skip the second clock read; time.Time stays on the
// caller's stack, so instrumentation never allocates.
func profStart() (bool, time.Time) {
	if !profEnabled.Load() {
		return false, time.Time{}
	}
	return true, time.Now()
}

// profEnd accumulates the elapsed time into a stage's counters, and
// into sc when non-nil. One clock read feeds both, so a scope's totals
// can never drift from the global profile's view of the same calls.
func profEnd(on bool, sc *ProfileScope, st profStage, t0 time.Time) {
	if !on {
		return
	}
	d := int64(time.Since(t0))
	profCounters[st].ns.Add(d)
	profCounters[st].calls.Add(1)
	if sc != nil {
		sc.ns[st].Add(d)
		sc.calls[st].Add(1)
	}
}
