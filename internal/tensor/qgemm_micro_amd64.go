package tensor

import "rhsd/internal/cpu"

// amd64 int8 micro-kernel registrations.
//
// Geometry notes:
//   - qavx2 4×16: 8 YMM accumulators (4 rows × two 8-dword vectors),
//     VPMADDUBSW → VPMADDWD(ones) → VPADDD per k-group; the int16
//     saturation of VPMADDUBSW makes this its own "sat16" family.
//   - qvnni 8×32: 16 ZMM accumulators (8 rows × two 16-dword vectors),
//     one VPDPBUSD per row per k-group — exact int32 accumulation.
//
// KC is a multiple of 4 for every kernel (the packers emit 4-deep byte
// groups). Integer accumulation is exact, so KC/NC need not match
// across kernels for bit-stability — each kernel carries the blocking
// the measured sweep (BenchmarkQGemmBlockSweep) preferred. KC=768
// additionally makes the dominant backbone shapes (kk ≤ 768) a single
// k-block, which skips the int32 carry buffer entirely.
var qarchKernels = []*qgemmKernel{
	{name: "qavx2", kind: qmicroAVX2x4x16, ref: qmicroGoSat16, mr: 4, nr: 16, kc: 768, nc: 512, sat: true},
	{name: "qvnni", kind: qmicroVNNI8x32, ref: qmicroGoExact, mr: 8, nr: 32, kc: 768, nc: 128},
}

// qarchPreferred orders the default selection widest-first.
var qarchPreferred = []string{"qvnni", "qavx2", "qgo"}

func qarchKernelUsable(kr *qgemmKernel) bool {
	switch kr.kind {
	case qmicroAVX2x4x16:
		return cpu.X86.AVX2
	case qmicroVNNI8x32:
		return cpu.X86.HasAVX512VNNI()
	default:
		return true
	}
}

// qgemmMicroRun executes one int8 micro-kernel invocation:
// acc[r*nr+s] = Σ over kc4 4-deep k-groups of pa·pb products,
// overwriting the mr×nr tile prefix of acc. Static switch dispatch for
// the same escape-analysis reason as gemmMicroRun.
func qgemmMicroRun(kind qmicroKind, mr, nr, kc4 int, pa []int8, pb []uint8, acc *[qgemmMaxTile]int32) {
	if kc4 <= 0 {
		tile := acc[:mr*nr]
		for i := range tile {
			tile[i] = 0
		}
		return
	}
	switch kind {
	case qmicroGoExact:
		qgemmMicroGoExact(mr, nr, kc4, pa, pb, acc)
	case qmicroGoSat16:
		qgemmMicroGoSat16(mr, nr, kc4, pa, pb, acc)
	case qmicroAVX2x4x16:
		_ = pa[kc4*16-1]
		_ = pb[kc4*64-1]
		qgemmMicroAVX2(kc4, &pa[0], &pb[0], acc)
	case qmicroVNNI8x32:
		_ = pa[kc4*32-1]
		_ = pb[kc4*128-1]
		qgemmMicroVNNI(kc4, &pa[0], &pb[0], acc)
	default:
		panic("tensor: unknown int8 micro-kernel kind")
	}
}

// Assembly micro-kernels (qgemm_micro_amd64.s). Each overwrites the
// leading mr×nr int32s of acc.
//
//go:noescape
func qgemmMicroAVX2(kc4 int, pa *int8, pb *uint8, acc *[qgemmMaxTile]int32)

//go:noescape
func qgemmMicroVNNI(kc4 int, pa *int8, pb *uint8, acc *[qgemmMaxTile]int32)

// qinterleaveRows writes dst[s*4+j] = rj[s] for s < n — the 4-deep
// k-group interleave the packed-B layout wants — 16 columns per SSE2
// step. Packing was the quantized GEMM's hot spot as a scalar loop
// (stride-4 byte scatters), not the dot products.
func qinterleaveRows(dst []uint8, r0, r1, r2, r3 []uint8, n int) {
	if n <= 0 {
		return
	}
	_ = dst[n*4-1]
	_, _, _, _ = r0[n-1], r1[n-1], r2[n-1], r3[n-1]
	qinterleave4(&dst[0], &r0[0], &r1[0], &r2[0], &r3[0], n)
}

//go:noescape
func qinterleave4(dst *uint8, r0, r1, r2, r3 *uint8, n int)
