package tensor

import (
	"fmt"
	"math"
)

// Int8 quantization primitives for the quantized inference path.
//
// Two schemes, chosen to keep every int8 micro-kernel exact over the
// calibrated domain (DESIGN.md §16):
//
//   - Weights: per-output-channel symmetric int8. Each output channel r
//     gets scale[r] = maxabs(w[r,:])/127 and w quantizes to
//     round-to-nearest-even(w/scale) saturated to [-127, 127]. Symmetric
//     quantization needs no zero-point correction on the weight side.
//   - Activations: per-tensor affine uint8 restricted to [0, 127] — one
//     bit of range is deliberately given up so that any
//     activation·weight pair satisfies |u8·s8| ≤ 127·127 and the AVX2
//     VPMADDUBSW kernel's intermediate int16 pair sum (two products,
//     ≤ 32258) can never saturate. Inside the calibrated domain all
//     registered qgemm kernels therefore compute the same exact int32
//     sums; the int16-saturating semantics only differ on
//     out-of-contract inputs (see qgemm_kernel.go).
//
// Rounding is round-to-nearest-even with saturation in every direction:
// ±Inf pin to the range ends and NaN maps to the representation of 0.0
// (0 for weights, the zero point for activations), so a poisoned input
// cannot produce out-of-range quantized values.

// QuantParams is the affine quantization of one activation tensor:
// real = Scale·(q − Zero), with q restricted to [0, ActQMax].
type QuantParams struct {
	Scale float32
	Zero  uint8
}

// ActQMax is the top of the activation quantized range. 127 rather than
// 255: see the package comment on VPMADDUBSW saturation.
const ActQMax = 127

// WeightQMax is the symmetric weight bound; -128 is excluded so
// |product| ≤ 127·127 holds with the activation range above.
const WeightQMax = 127

// Quantize maps one real value into the activation range.
func (p QuantParams) Quantize(x float32) uint8 {
	if x != x { // NaN represents as 0.0, i.e. the zero point
		return p.Zero
	}
	q := math.RoundToEven(float64(x)/float64(p.Scale)) + float64(p.Zero)
	if q <= 0 {
		return 0
	}
	if q >= ActQMax {
		return ActQMax
	}
	return uint8(q)
}

// Dequantize maps a quantized activation back to its real value.
func (p QuantParams) Dequantize(q uint8) float32 {
	return p.Scale * float32(int32(q)-int32(p.Zero))
}

// QuantizeSlice quantizes src into dst. Lengths must match exactly —
// a longer dst almost always means the caller sized the buffer for the
// wrong tensor, so the mismatch panics instead of being silently
// resliced.
//
// For the calibrated scales the int8 path produces (normal float32,
// reciprocal representable as a normal float32) the division is
// computed as a float32 multiply by the precomputed reciprocal with
// round-to-nearest-even to integer — the vectorizable form, run by the
// AVX2 kernel where available and by its bit-identical portable twin
// everywhere else. On inputs within half an ulp of a rounding boundary
// the reciprocal-multiply can land on the other side of the boundary
// than the exact division, moving the result by at most one quantized
// step — bounded by TestQuantizeSliceFastVsExactTolerance, covered
// end-to-end by the accuracy-delta gate, and documented in DESIGN §17.
// Degenerate scales (zero range ⇒ Scale 1 is still normal; underflowed
// envelopes ⇒ SmallestNonzeroFloat32, whose reciprocal overflows) fall
// back to the exact float64 path, so no scale produces garbage.
func (p QuantParams) QuantizeSlice(dst []uint8, src []float32) {
	p.quantizeSliceScoped(nil, dst, src)
}

// quantizeSliceScoped is QuantizeSlice with a profile-attribution
// scope; the int8 infer path threads the workspace's scope through.
func (p QuantParams) quantizeSliceScoped(sc *ProfileScope, dst []uint8, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: QuantizeSlice dst length %d != src length %d", len(dst), len(src)))
	}
	on, t0 := profStart()
	if rcp, ok := quantRecip(p.Scale); ok {
		quantizeSliceFast(dst, src, rcp, p.Zero)
	} else {
		p.quantizeSliceExact(dst, src)
	}
	profEnd(on, sc, profQuantize, t0)
}

// quantizeSliceExact is the historic scalar path: exact float64
// division, round-to-nearest-even, saturate. It is the semantic
// reference the fast path is tolerance-gated against, and the fallback
// for scales outside the fast path's contract.
func (p QuantParams) quantizeSliceExact(dst []uint8, src []float32) {
	scale, zero := float64(p.Scale), float64(p.Zero)
	for i, x := range src {
		if x != x {
			dst[i] = p.Zero
			continue
		}
		q := math.RoundToEven(float64(x)/scale) + zero
		switch {
		case q <= 0:
			dst[i] = 0
		case q >= ActQMax:
			dst[i] = ActQMax
		default:
			dst[i] = uint8(q)
		}
	}
}

// QuantRange is the calibration range reducer: it folds observed
// activation values into a [Min, Max] envelope, ignoring non-finite
// values (an Inf in a calibration batch must not blow the scale up to
// infinity, and NaN carries no range information at all).
type QuantRange struct {
	Min, Max float32
	seen     bool
}

// Observe folds one value into the range.
func (r *QuantRange) Observe(v float32) {
	if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
		return
	}
	if !r.seen {
		r.Min, r.Max, r.seen = v, v, true
		return
	}
	if v < r.Min {
		r.Min = v
	}
	if v > r.Max {
		r.Max = v
	}
}

// ObserveSlice folds every value of s into the range.
func (r *QuantRange) ObserveSlice(s []float32) {
	for _, v := range s {
		r.Observe(v)
	}
}

// Merge folds another reducer's envelope into r.
func (r *QuantRange) Merge(o QuantRange) {
	if !o.seen {
		return
	}
	r.Observe(o.Min)
	r.Observe(o.Max)
}

// Observed reports whether any finite value has been folded in.
func (r *QuantRange) Observed() bool { return r.seen }

// Params converts the calibrated envelope into activation quantization
// parameters. The envelope is first widened to include 0 so the real
// value 0.0 — convolution padding, ReLU output — is exactly
// representable (it maps to the zero point with no rounding error). A
// degenerate envelope (nothing observed, or all zeros) yields the
// identity-ish {Scale: 1, Zero: 0} so downstream arithmetic stays
// finite.
func (r *QuantRange) Params() QuantParams {
	if !r.seen {
		return QuantParams{Scale: 1}
	}
	lo := math.Min(float64(r.Min), 0)
	hi := math.Max(float64(r.Max), 0)
	if hi == lo {
		return QuantParams{Scale: 1}
	}
	scale := float32((hi - lo) / ActQMax)
	if !(scale > 0) || math.IsInf(float64(scale), 0) {
		// Underflow to 0 (sub-denormal range) — pick the smallest
		// positive value so division keeps producing finite, clampable
		// results.
		scale = math.SmallestNonzeroFloat32
	}
	zp := math.RoundToEven(-lo / float64(scale))
	if zp < 0 {
		zp = 0
	}
	if zp > ActQMax {
		zp = ActQMax
	}
	return QuantParams{Scale: scale, Zero: uint8(zp)}
}

// QuantizeWeightsPerChannel quantizes a [m, k] weight matrix with one
// symmetric scale per output channel (row). A zero-range channel (all
// zeros, or all non-finite) gets scale 1 and all-zero quantized weights.
func QuantizeWeightsPerChannel(w []float32, m, k int) (q []int8, scales []float32) {
	q = make([]int8, m*k)
	scales = make([]float32, m)
	for r := 0; r < m; r++ {
		row := w[r*k : r*k+k]
		amax := 0.0
		for _, v := range row {
			a := math.Abs(float64(v))
			if !math.IsInf(a, 0) && a == a && a > amax {
				amax = a
			}
		}
		scale := amax / WeightQMax
		if !(scale > 0) {
			scales[r] = 1
			continue // quantized row stays all-zero
		}
		scales[r] = float32(scale)
		qrow := q[r*k : r*k+k]
		for i, v := range row {
			if v != v {
				continue // NaN → 0
			}
			s := math.RoundToEven(float64(v) / float64(scales[r]))
			switch {
			case s <= -WeightQMax:
				qrow[i] = -WeightQMax
			case s >= WeightQMax:
				qrow[i] = WeightQMax
			default:
				qrow[i] = int8(s)
			}
		}
	}
	return q, scales
}
