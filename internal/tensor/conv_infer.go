package tensor

import (
	"fmt"
	"sync/atomic"

	"rhsd/internal/parallel"
)

// This file holds the inference-only variants of the convolution kernels.
// They differ from the training entry points (conv.go) in exactly two
// ways: all scratch and output memory comes from a caller-owned Workspace
// instead of the heap, and the bias + leaky-ReLU epilogue is fused into
// the output sweep. The arithmetic — values, accumulation order, padding
// semantics — is identical, so inference results match the training-path
// Forward bit for bit.

// Epilogue describes the fused per-channel tail of a convolution: an
// optional bias add followed by an optional leaky ReLU. Applying it in
// one sweep performs the same add-then-scale sequence as addChannelBias
// followed by an activation layer, so fused and unfused paths agree
// exactly.
type Epilogue struct {
	Bias  *Tensor // [OC] channel bias, nil for none
	Act   bool    // apply leaky ReLU after the bias
	Slope float32 // negative-side slope (0 = plain ReLU)
}

// epilogueSweep applies ep to t [N,C,...] in a single pass.
func epilogueSweep(t *Tensor, ep Epilogue) {
	if ep.Bias == nil && !ep.Act {
		return
	}
	n, c := t.shape[0], t.shape[1]
	if n == 0 || c == 0 {
		return
	}
	plane := t.Size() / (n * c)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			var b float32
			if ep.Bias != nil {
				b = ep.Bias.data[ch]
			}
			seg := t.data[(i*c+ch)*plane : (i*c+ch+1)*plane]
			if ep.Act {
				for j, v := range seg {
					v += b
					if v < 0 {
						v *= ep.Slope
					}
					seg[j] = v
				}
			} else {
				for j := range seg {
					seg[j] += b
				}
			}
		}
	}
}

// im2colInto lowers one image plane set [c,h,w] into cd, writing every
// element (out-of-bounds taps store an explicit zero), so cd may be dirty
// workspace memory. With a single worker the named channel sweep is
// called directly — no closure is created, keeping serial inference
// allocation-free (see gemmPacked for the rationale).
func im2colInto(xd []float32, c, h, w int, o ConvOpts, cd []float32) {
	im2colScoped(nil, xd, c, h, w, o, cd)
}

// im2colScoped is im2colInto with a profile-attribution scope.
func im2colScoped(sc *ProfileScope, xd []float32, c, h, w int, o ConvOpts, cd []float32) {
	on, t0 := profStart()
	if parallel.Workers() == 1 {
		im2colChans(xd, h, w, o, cd, 0, c)
		profEnd(on, sc, profIm2col, t0)
		return
	}
	perChan := o.Kernel * o.Kernel * o.OutDim(h) * o.OutDim(w)
	parallel.For(c, parallel.GrainFor(perChan, convMinChunkWork), func(c0, c1 int) {
		im2colChans(xd, h, w, o, cd, c0, c1)
	})
	profEnd(on, sc, profIm2col, t0)
}

// im2colChans lowers channels [c0, c1).
func im2colChans(xd []float32, h, w int, o ConvOpts, cd []float32, c0, c1 int) {
	oh, ow := o.OutDim(h), o.OutDim(w)
	for ch := c0; ch < c1; ch++ {
		base := ch * h * w
		row := ch * o.Kernel * o.Kernel
		for ky := 0; ky < o.Kernel; ky++ {
			for kx := 0; kx < o.Kernel; kx++ {
				dst := cd[row*oh*ow:]
				row++
				i := 0
				for oy := 0; oy < oh; oy++ {
					sy := oy*o.Stride + ky - o.Padding
					if sy < 0 || sy >= h {
						for e := 0; e < ow; e++ {
							dst[i] = 0
							i++
						}
						continue
					}
					srow := xd[base+sy*w : base+sy*w+w]
					for ox := 0; ox < ow; ox++ {
						sx := ox*o.Stride + kx - o.Padding
						if sx >= 0 && sx < w {
							dst[i] = srow[sx]
						} else {
							dst[i] = 0
						}
						i++
					}
				}
			}
		}
	}
}

// col2imInto scatters a column matrix back into the image buffer xd
// [c,h,w], zeroing each plane before accumulating so xd may be dirty.
// The ky/kx accumulation order matches Col2Im exactly.
func col2imInto(cd []float32, c, h, w int, o ConvOpts, xd []float32) {
	if parallel.Workers() == 1 {
		col2imChans(cd, h, w, o, xd, 0, c)
		return
	}
	perChan := o.Kernel * o.Kernel * o.OutDim(h) * o.OutDim(w)
	parallel.For(c, parallel.GrainFor(perChan, convMinChunkWork), func(c0, c1 int) {
		col2imChans(cd, h, w, o, xd, c0, c1)
	})
}

// col2imChans scatters channels [c0, c1).
func col2imChans(cd []float32, h, w int, o ConvOpts, xd []float32, c0, c1 int) {
	oh, ow := o.OutDim(h), o.OutDim(w)
	for ch := c0; ch < c1; ch++ {
		base := ch * h * w
		plane := xd[base : base+h*w]
		for j := range plane {
			plane[j] = 0
		}
		row := ch * o.Kernel * o.Kernel
		for ky := 0; ky < o.Kernel; ky++ {
			for kx := 0; kx < o.Kernel; kx++ {
				src := cd[row*oh*ow:]
				row++
				i := 0
				for oy := 0; oy < oh; oy++ {
					sy := oy*o.Stride + ky - o.Padding
					if sy < 0 || sy >= h {
						i += ow
						continue
					}
					drow := xd[base+sy*w : base+sy*w+w]
					for ox := 0; ox < ow; ox++ {
						sx := ox*o.Stride + kx - o.Padding
						if sx >= 0 && sx < w {
							drow[sx] += src[i]
						}
						i++
					}
				}
			}
		}
	}
}

// Conv2DInfer is Conv2D with workspace-backed output and scratch plus a
// fused epilogue. ws may be nil (falls back to plain allocation).
func Conv2DInfer(ws *Workspace, x, wgt *Tensor, o ConvOpts, ep Epilogue) *Tensor {
	o.check()
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oc := wgt.shape[0]
	if wgt.shape[1] != c || wgt.shape[2] != o.Kernel || wgt.shape[3] != o.Kernel {
		panic(fmt.Sprintf("tensor: Conv2DInfer weight %v incompatible with input %v opts %+v",
			wgt.shape, x.shape, o))
	}
	oh, ow := o.OutDim(h), o.OutDim(w)
	kk := c * o.Kernel * o.Kernel
	out := ws.Tensor(n, oc, oh, ow)
	sc := ws.ProfileScope()
	if convFusedEligible(oc, oh*ow, kk) {
		// Fused path: B panels are packed straight from the image inside
		// the packed GEMM (bSource.packIm2col), so the lowered column
		// matrix is never materialized — one full write+read of
		// kk·oh·ow floats per item is skipped, and the workspace never
		// even allocates that size class.
		if n == 1 || parallel.Workers() == 1 {
			conv2dInferItemsFused(sc, x.data, wgt.data, out.data, c, h, w, oc, kk, o, 0, n)
		} else {
			parallel.For(n, 1, func(n0, n1 int) {
				conv2dInferItemsFused(sc, x.data, wgt.data, out.data, c, h, w, oc, kk, o, n0, n1)
			})
		}
		epilogueSweep(out, ep)
		return out
	}
	// One cols buffer for the whole batch, sliced per item: workspace
	// calls must stay outside the parallel region.
	colsAll := ws.Get(n * kk * oh * ow)
	if n == 1 || parallel.Workers() == 1 {
		conv2dInferItems(sc, x.data, wgt.data, colsAll, out.data, c, h, w, oc, kk, o, 0, n)
	} else {
		parallel.For(n, 1, func(n0, n1 int) {
			conv2dInferItems(sc, x.data, wgt.data, colsAll, out.data, c, h, w, oc, kk, o, n0, n1)
		})
	}
	epilogueSweep(out, ep)
	return out
}

// convFusedEnabled gates the fused im2col→packB path; on by default,
// SetConvFusedIm2col turns it off for benchmark baselines and triage.
var convFusedEnabled atomic.Bool

func init() { convFusedEnabled.Store(true) }

// SetConvFusedIm2col enables or disables fusing im2col into the packed
// GEMM's B packer for inference convolutions, returning the previous
// setting. Both paths are bit-identical (TestConvInferFusedMatches
// Materialized); the toggle exists so the memory-traffic win stays
// measurable (`rhsd-bench -exp simd`) and as an operational chicken bit.
func SetConvFusedIm2col(on bool) (prev bool) {
	return convFusedEnabled.Swap(on)
}

// convFusedEligible mirrors Gemm's routing decision exactly: a conv
// whose GEMM routes to the packed sweep packs B straight from the image
// (never materializing columns), one that routes to the row kernel
// materializes — the row kernel walks op(B) by rows and needs the
// lowered matrix. Sharing gemmUsesPacked keeps fused and materialized
// dispatch bit-identical per shape and extends fusion to the small
// refinement-stage convs the old 2^17 flop cliff kept on the
// materialized scalar path.
func convFusedEligible(m, n, k int) bool {
	return convFusedEnabled.Load() && gemmUsesPacked(m, n, k)
}

// conv2dInferItemsFused multiplies batch items [n0, n1) with B panels
// packed directly from each image.
func conv2dInferItemsFused(sc *ProfileScope, xd, wd, od []float32, c, h, w, oc, kk int, o ConvOpts, n0, n1 int) {
	oh, ow := o.OutDim(h), o.OutDim(w)
	for i := n0; i < n1; i++ {
		bs := im2colB(xd[i*c*h*w:(i+1)*c*h*w], c, h, w, o)
		dst := od[i*oc*oh*ow : (i+1)*oc*oh*ow]
		gemmPackedScoped(gemmActive.Load(), sc, false, oc, oh*ow, kk, 1, wd, bs, 0, dst)
	}
}

// conv2dInferItems lowers and multiplies batch items [n0, n1).
func conv2dInferItems(sc *ProfileScope, xd, wd, colsAll, od []float32, c, h, w, oc, kk int, o ConvOpts, n0, n1 int) {
	oh, ow := o.OutDim(h), o.OutDim(w)
	for i := n0; i < n1; i++ {
		col := colsAll[i*kk*oh*ow : (i+1)*kk*oh*ow]
		im2colScoped(sc, xd[i*c*h*w:(i+1)*c*h*w], c, h, w, o, col)
		dst := od[i*oc*oh*ow : (i+1)*oc*oh*ow]
		GemmScoped(sc, false, false, oc, oh*ow, kk, 1, wd, col, 0, dst)
	}
}

// Deconv2DInfer is Deconv2D with workspace-backed memory and a fused
// epilogue.
func Deconv2DInfer(ws *Workspace, x, wgt *Tensor, o ConvOpts, ep Epilogue) *Tensor {
	o.check()
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if wgt.shape[0] != c || wgt.shape[2] != o.Kernel || wgt.shape[3] != o.Kernel {
		panic(fmt.Sprintf("tensor: Deconv2DInfer weight %v incompatible with input %v", wgt.shape, x.shape))
	}
	oc := wgt.shape[1]
	oh := (h-1)*o.Stride - 2*o.Padding + o.Kernel
	ow := (w-1)*o.Stride - 2*o.Padding + o.Kernel
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Deconv2DInfer produces non-positive output %dx%d", oh, ow))
	}
	kk := oc * o.Kernel * o.Kernel
	out := ws.Tensor(n, oc, oh, ow)
	colsAll := ws.Get(n * kk * h * w)
	sc := ws.ProfileScope()
	if n == 1 || parallel.Workers() == 1 {
		deconv2dInferItems(sc, x.data, wgt.data, colsAll, out.data, c, h, w, oc, oh, ow, kk, o, 0, n)
	} else {
		parallel.For(n, 1, func(n0, n1 int) {
			deconv2dInferItems(sc, x.data, wgt.data, colsAll, out.data, c, h, w, oc, oh, ow, kk, o, n0, n1)
		})
	}
	epilogueSweep(out, ep)
	return out
}

// deconv2dInferItems multiplies and scatters batch items [n0, n1).
func deconv2dInferItems(sc *ProfileScope, xd, wd, colsAll, od []float32, c, h, w, oc, oh, ow, kk int, o ConvOpts, n0, n1 int) {
	for i := n0; i < n1; i++ {
		xi := xd[i*c*h*w : (i+1)*c*h*w]
		col := colsAll[i*kk*h*w : (i+1)*kk*h*w]
		GemmScoped(sc, true, false, kk, h*w, c, 1, wd, xi, 0, col)
		col2imInto(col, oc, oh, ow, o, od[i*oc*oh*ow:(i+1)*oc*oh*ow])
	}
}

// MaxPool2DInfer is MaxPool2D without argmax bookkeeping, writing into
// workspace memory.
func MaxPool2DInfer(ws *Workspace, x *Tensor, kernel, stride int) *Tensor {
	if kernel <= 0 || stride <= 0 {
		panic("tensor: MaxPool2DInfer requires positive kernel and stride")
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh := (h-kernel)/stride + 1
	ow := (w-kernel)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: MaxPool2DInfer output empty for input %dx%d kernel %d stride %d", h, w, kernel, stride))
	}
	out := ws.Tensor(n, c, oh, ow)
	maxPool2DInto(x.data, n, c, h, w, kernel, stride, out.data, nil)
	return out
}

// ConcatChannelsInfer is ConcatChannels with workspace-backed output.
func ConcatChannelsInfer(ws *Workspace, ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatChannelsInfer needs at least one input")
	}
	n, h, w := ts[0].shape[0], ts[0].shape[2], ts[0].shape[3]
	totalC := 0
	for _, t := range ts {
		if t.shape[0] != n || t.shape[2] != h || t.shape[3] != w {
			panic(fmt.Sprintf("tensor: ConcatChannelsInfer mismatch %v vs %v", ts[0].shape, t.shape))
		}
		totalC += t.shape[1]
	}
	out := ws.Tensor(n, totalC, h, w)
	plane := h * w
	for i := 0; i < n; i++ {
		off := i * totalC * plane
		for _, t := range ts {
			c := t.shape[1]
			copy(out.data[off:off+c*plane], t.data[i*c*plane:(i+1)*c*plane])
			off += c * plane
		}
	}
	return out
}
