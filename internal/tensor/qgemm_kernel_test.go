package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// availableQKernels returns every int8 kernel usable on this machine.
func availableQKernels(t *testing.T) []*qgemmKernel {
	t.Helper()
	var ks []*qgemmKernel
	for _, kr := range allQGemmKernels() {
		if qarchKernelUsable(kr) {
			ks = append(ks, kr)
		}
	}
	if len(ks) == 0 {
		t.Fatal("no int8 kernels available")
	}
	return ks
}

// qtestEpilogue builds a deterministic dequantization epilogue for an
// m-row result. Using non-trivial scales/corrections ensures the store
// path is exercised, while staying exactly reproducible across kernels.
func qtestEpilogue(m int) qepilogue {
	deq := make([]float32, m)
	corr := make([]int32, m)
	for r := 0; r < m; r++ {
		deq[r] = 0.25 + float32(r%5)*0.125
		corr[r] = int32(r%7) * 3
	}
	return qepilogue{deqScale: deq, corr: corr}
}

// qnaiveInt8 is the obviously-correct reference: a dense triple loop in
// exact int32 arithmetic followed by the same dequantization epilogue.
func qnaiveInt8(m, n, k int, aq []int8, b []uint8, ep qepilogue, c []float32) {
	for r := 0; r < m; r++ {
		for s := 0; s < n; s++ {
			var acc int32
			for p := 0; p < k; p++ {
				acc += int32(aq[r*k+p]) * int32(b[p*n+s])
			}
			v := ep.deqScale[r]*float32(acc-ep.corr[r]) + biasAt(ep.bias, r)
			if ep.act && v < 0 {
				v *= ep.slope
			}
			c[r*n+s] = v
		}
	}
}

func biasAt(bias []float32, r int) float32 {
	if bias == nil {
		return 0
	}
	return bias[r]
}

// fillQTest fills deterministic full-range operands: weights sweep the
// whole signed range including ±127, activations the whole unsigned
// range including values > ActQMax — out-of-contract on purpose, so the
// sat16 saturation edges and the u8/s8 operand roles in the assembly
// are both exercised.
func fillQTest(aq []int8, b []uint8) {
	for i := range aq {
		aq[i] = int8(i*37%255 - 127)
	}
	for i := range b {
		b[i] = uint8(i * 101 % 256)
	}
}

// TestQGemmKernelTailShapeParity pins every asm int8 kernel against its
// portable reference twin, bit for bit, over exhaustive m/n/k tail
// shapes and full-range inputs (including the VPMADDUBSW saturation
// region for the sat16 family).
func TestQGemmKernelTailShapeParity(t *testing.T) {
	for _, kr := range availableQKernels(t) {
		if kr.kind == kr.ref {
			continue // portable kernel is its own twin
		}
		twin := kr.refTwin()
		ms := []int{1, kr.mr - 1, kr.mr, kr.mr + 1, 2*kr.mr + 1}
		ns := []int{1, kr.nr - 1, kr.nr, kr.nr + 1, kr.nc - 1, kr.nc + 1}
		ks := []int{1, 3, 4, 5, kr.kc - 1, kr.kc, kr.kc + 1, 2*kr.kc + 3}
		for _, m := range ms {
			if m < 1 {
				continue
			}
			for _, n := range ns {
				for _, k := range ks {
					aq := make([]int8, m*k)
					b := make([]uint8, k*n)
					fillQTest(aq, b)
					ep := qtestEpilogue(m)
					pa := make([]int8, qgemmPackedSize(kr, m, k))
					qpackA(kr, m, k, aq, pa)
					got := make([]float32, m*n)
					want := make([]float32, m*n)
					qgemmPackedWith(kr, m, n, k, pa, qdenseB(k, n, b), ep, got)
					qgemmPackedWith(twin, m, n, k, pa, qdenseB(k, n, b), ep, want)
					for i := range want {
						if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
							t.Fatalf("%s vs %s: m=%d n=%d k=%d element %d: %v vs %v",
								kr.name, twin.name, m, n, k, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestQGemmInt8MatchesNaive checks the full packed pipeline — packers,
// micro-kernel, carry buffer, epilogue — against the dense triple-loop
// reference. Activations stay within the calibrated domain (≤ ActQMax)
// so every kernel family must agree exactly with the exact reference.
func TestQGemmInt8MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {8, 32, 64}, {17, 33, 100},
		{37, 130, 300}, {9, 257, 511}, {64, 96, 576},
	}
	orig := QGemmKernel()
	defer SetQGemmKernel(orig)
	for _, kr := range availableQKernels(t) {
		if _, err := SetQGemmKernel(kr.name); err != nil {
			t.Fatalf("SetQGemmKernel(%s): %v", kr.name, err)
		}
		for _, sh := range shapes {
			m, n, k := sh[0], sh[1], sh[2]
			aq := make([]int8, m*k)
			b := make([]uint8, k*n)
			for i := range aq {
				aq[i] = int8(rng.Intn(255) - 127)
			}
			for i := range b {
				b[i] = uint8(rng.Intn(ActQMax + 1)) // in-domain
			}
			ep := qtestEpilogue(m)
			got := make([]float32, m*n)
			want := make([]float32, m*n)
			QGemmInt8(m, n, k, aq, b, ep.deqScale, ep.corr, got)
			qnaiveInt8(m, n, k, aq, b, ep, want)
			for i := range want {
				if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
					t.Fatalf("%s: m=%d n=%d k=%d element %d: got %v want %v",
						kr.name, m, n, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestQGemmKernelDomainAgreement pins the cross-family contract: inside
// the calibrated activation domain (bytes ≤ ActQMax) the sat16 family
// cannot saturate, so every registered kernel returns bit-identical
// results on the same inputs.
func TestQGemmKernelDomainAgreement(t *testing.T) {
	ks := availableQKernels(t)
	m, n, k := 37, 130, 300
	rng := rand.New(rand.NewSource(3))
	aq := make([]int8, m*k)
	b := make([]uint8, k*n)
	for i := range aq {
		aq[i] = int8(rng.Intn(255) - 127)
	}
	for i := range b {
		b[i] = uint8(rng.Intn(ActQMax + 1))
	}
	ep := qtestEpilogue(m)
	var ref []float32
	for _, kr := range ks {
		pa := make([]int8, qgemmPackedSize(kr, m, k))
		qpackA(kr, m, k, aq, pa)
		got := make([]float32, m*n)
		qgemmPackedWith(kr, m, n, k, pa, qdenseB(k, n, b), ep, got)
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if math.Float32bits(ref[i]) != math.Float32bits(got[i]) {
				t.Fatalf("%s diverges from %s at %d: %v vs %v", kr.name, ks[0].name, i, got[i], ref[i])
			}
		}
	}
}

// TestQGemmSat16Saturation drives the sat16 portable reference into its
// saturation region and checks it differs from the exact reference
// there — proving the parity suite's full-range inputs genuinely
// exercise the saturating semantics rather than vacuously agreeing.
func TestQGemmSat16Saturation(t *testing.T) {
	// One k-group: a = [127, 127, 0, 0], b = [255, 255, 0, 0].
	// Exact pair sum = 2·127·255 = 64770; sat16 clamps to 32767.
	pa := []int8{127, 127, 0, 0}
	pb := []uint8{255, 255, 0, 0}
	var exact, sat [qgemmMaxTile]int32
	qgemmMicroGoExact(1, 1, 1, pa, pb, &exact)
	qgemmMicroGoSat16(1, 1, 1, pa, pb, &sat)
	if exact[0] != 64770 {
		t.Fatalf("exact sum %d, want 64770", exact[0])
	}
	if sat[0] != 32767 {
		t.Fatalf("sat16 sum %d, want clamped 32767", sat[0])
	}
	// In-domain bytes (≤ ActQMax) cannot saturate: worst pair sum is
	// 2·127·127 = 32258 < 32767.
	pb2 := []uint8{127, 127, 0, 0}
	qgemmMicroGoExact(1, 1, 1, pa, pb2, &exact)
	qgemmMicroGoSat16(1, 1, 1, pa, pb2, &sat)
	if exact[0] != sat[0] {
		t.Fatalf("in-domain mismatch: exact %d sat %d", exact[0], sat[0])
	}
}

// TestSetQGemmKernel checks the registry API surface: listing,
// availability, swapping, and rejection of unknown/unsupported names.
func TestSetQGemmKernel(t *testing.T) {
	names := QGemmKernels()
	if len(names) == 0 {
		t.Fatal("no registered int8 kernels")
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	if !seen["qgo"] {
		t.Fatalf("portable qgo kernel missing from %v", names)
	}
	if !QGemmKernelAvailable("qgo") {
		t.Fatal("qgo must be available everywhere")
	}
	if QGemmKernelFamily("qgo") != "exact" {
		t.Fatalf("qgo family %q, want exact", QGemmKernelFamily("qgo"))
	}
	if QGemmKernelFamily("nope") != "" {
		t.Fatal("unknown kernel reported a family")
	}

	orig := QGemmKernel()
	defer SetQGemmKernel(orig)
	prev, err := SetQGemmKernel("qgo")
	if err != nil {
		t.Fatalf("SetQGemmKernel(qgo): %v", err)
	}
	if prev != orig {
		t.Fatalf("prev = %q, want %q", prev, orig)
	}
	if QGemmKernel() != "qgo" {
		t.Fatalf("active = %q after swap", QGemmKernel())
	}
	if _, err := SetQGemmKernel("no-such-kernel"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if QGemmKernel() != "qgo" {
		t.Fatal("failed swap changed the active kernel")
	}
}

// TestForcedQGemmKernelActive validates the RHSD_QGEMM_KERNEL contract
// under the quantized kernel matrix: when the variable names an
// available kernel, that kernel must be active.
func TestForcedQGemmKernelActive(t *testing.T) {
	name, present, honored := RequestedQGemmKernel()
	if !present {
		t.Skip("RHSD_QGEMM_KERNEL not set")
	}
	if !honored {
		if QGemmKernelAvailable(name) {
			t.Fatalf("RHSD_QGEMM_KERNEL=%q available but not honored", name)
		}
		t.Skipf("RHSD_QGEMM_KERNEL=%q unavailable on this host", name)
	}
	if QGemmKernel() != name {
		t.Fatalf("RHSD_QGEMM_KERNEL=%q honored but active kernel is %q", name, QGemmKernel())
	}
}

// TestQGemmKernelDispatchRace hammers concurrent QGemmInt8 calls
// against kernel swaps under the race detector; every result must match
// some registered kernel's output (they are all bit-identical in-domain
// anyway), never a torn mix.
func TestQGemmKernelDispatchRace(t *testing.T) {
	ks := availableQKernels(t)
	orig := QGemmKernel()
	defer SetQGemmKernel(orig)

	m, n, k := 16, 64, 128
	aq := make([]int8, m*k)
	b := make([]uint8, k*n)
	for i := range aq {
		aq[i] = int8(i%255 - 127)
	}
	for i := range b {
		b[i] = uint8(i % (ActQMax + 1))
	}
	ep := qtestEpilogue(m)
	want := make([]float32, m*n)
	qnaiveInt8(m, n, k, aq, b, ep, want)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := make([]float32, m*n)
			for {
				select {
				case <-stop:
					return
				default:
				}
				QGemmInt8(m, n, k, aq, b, ep.deqScale, ep.corr, got)
				for i := range want {
					if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
						t.Errorf("racy result differs at %d: %v vs %v", i, got[i], want[i])
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if _, err := SetQGemmKernel(ks[i%len(ks)].name); err != nil {
			t.Errorf("swap: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestQGemmEpilogueBiasAct checks the fused bias + leaky-ReLU epilogue
// against the naive reference on all kernels.
func TestQGemmEpilogueBiasAct(t *testing.T) {
	m, n, k := 11, 40, 70
	aq := make([]int8, m*k)
	b := make([]uint8, k*n)
	fillQTest(aq, b)
	for i := range b {
		b[i] %= ActQMax + 1
	}
	ep := qtestEpilogue(m)
	ep.bias = make([]float32, m)
	for r := range ep.bias {
		ep.bias[r] = float32(r)*0.5 - 2
	}
	ep.act = true
	ep.slope = 0.05
	want := make([]float32, m*n)
	qnaiveInt8(m, n, k, aq, b, ep, want)
	for _, kr := range availableQKernels(t) {
		pa := make([]int8, qgemmPackedSize(kr, m, k))
		qpackA(kr, m, k, aq, pa)
		got := make([]float32, m*n)
		qgemmPackedWith(kr, m, n, k, pa, qdenseB(k, n, b), ep, got)
		for i := range want {
			if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
				t.Fatalf("%s epilogue: element %d got %v want %v", kr.name, i, got[i], want[i])
			}
		}
	}
}

// TestQGemmKernelGeometry pins the registry invariants the packers rely
// on: kc a multiple of the 4-byte k-group, nc a multiple of nr, and the
// register tile within qgemmMaxTile.
func TestQGemmKernelGeometry(t *testing.T) {
	for _, kr := range allQGemmKernels() {
		if kr.kc%4 != 0 {
			t.Errorf("%s: kc=%d not a multiple of 4", kr.name, kr.kc)
		}
		if kr.nc%kr.nr != 0 {
			t.Errorf("%s: nc=%d not a multiple of nr=%d", kr.name, kr.nc, kr.nr)
		}
		if kr.mr*kr.nr > qgemmMaxTile {
			t.Errorf("%s: tile %d×%d exceeds qgemmMaxTile", kr.name, kr.mr, kr.nr)
		}
		if kr.mr > qgemmMaxMR || kr.nr > qgemmMaxNR {
			t.Errorf("%s: mr=%d nr=%d exceed declared maxima", kr.name, kr.mr, kr.nr)
		}
	}
}
