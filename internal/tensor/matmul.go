package tensor

import (
	"fmt"

	"rhsd/internal/parallel"
)

// MatMul returns a × b for 2-D tensors a [m,k] and b [k,n].
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	Gemm(false, false, m, n, k, 1, a.data, b.data, 0, out.data)
	return out
}

// MatMulTransA returns aᵀ × b for a [k,m] and b [k,n].
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	Gemm(true, false, m, n, k, 1, a.data, b.data, 0, out.data)
	return out
}

// MatMulTransB returns a × bᵀ for a [m,k] and b [n,k].
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	Gemm(false, true, m, n, k, 1, a.data, b.data, 0, out.data)
	return out
}

// gemmMinChunkFlops is the minimum number of multiply-adds a worker chunk
// should carry: below it goroutine hand-off costs more than the maths, so
// parallel.For degrades to the serial path.
const gemmMinChunkFlops = 1 << 15

// gemmRowsMaxFlops is the multiply-add count above which Gemm always
// runs the packed sweep regardless of the other routing terms: past it
// the SIMD micro-kernel's advantage dwarfs any packing overhead.
// Measured by BenchmarkGemmSmallShapeSweep on the reference host: at
// 2^14 multiply-adds in a skinny-A shape (m4n16k256) the row kernel
// still wins 2× against the per-call packed sweep, while at ~2^15.2
// (m6n196k32) the packed sweep wins 3×, so the unconditional cutoff
// sits at 2^15 — a quarter of the old 2^17 cliff, which routed the CPN
// 1×1 heads at small grids and every refinement-sized product to
// scalar code.
const gemmRowsMaxFlops = 1 << 15

// gemmRowsMinN is the narrowest op(B) the packed sweep accepts: below
// it the NR-wide register tile is mostly padding (the narrowest
// registered kernel is 8 columns wide) and the row kernel is faster
// regardless of the flop count. Like the flop cutoff this is a pure
// shape test, not a kernel property, so routing cannot differ between
// kernels of one rounding family.
const gemmRowsMinN = 8

// Below gemmRowsMaxFlops the winner is decided by m, not by the flop
// count: the per-call packing traffic is k·n + m·k floats ≈ flops/m
// when m ≤ n·k, so wide-A products amortize the pack over m rows while
// skinny-A products never recoup it. The sweep's m-series at n=16
// pins the boundary — at m=4 the row kernel wins at every k up to
// 2^14 flops, at m=6 it still wins (m6n16k128), at m=8 the packed
// sweep wins from ~2^11 flops up (m8n16k32 onward; 2^10, m8n16k8, is
// a wash). Hence: m ≥ 8 products take the packed sweep from 2^10
// flops, everything else falls back to the row kernel until the
// unconditional 2^15 cutoff.
const (
	gemmPackedMinM          = 8
	gemmPackedWideMMinFlops = 1 << 10
)

// gemmUsesPacked is the routing decision shared by Gemm, GemmPreB and
// the fused-conv eligibility test (convFusedEligible): true routes the
// product to the packed cache-blocked sweep, false to the scalar row
// kernel. The decision depends only on the problem shape, never on the
// worker count or the selected kernel, so results stay bit-identical
// across pools and the fma-family kernels keep routing identically.
// The flop estimate is computed in int64 so a huge product can never
// wrap on 32-bit platforms and fall into (or negative-index) the
// scalar path.
func gemmUsesPacked(m, n, k int) bool {
	if n < gemmRowsMinN {
		return false
	}
	flops := int64(m) * int64(n) * int64(k)
	if flops >= gemmRowsMaxFlops {
		return true
	}
	return m >= gemmPackedMinM && flops >= gemmPackedWideMMinFlops
}

// Gemm computes c = alpha·op(a)·op(b) + beta·c where op optionally
// transposes. Dimensions follow BLAS convention: op(a) is m×k, op(b) is
// k×n and c is m×n.
//
// Most products run through the packed cache-blocked sweep
// (gemm_packed.go): A and B are repacked into cache-resident panels and
// swept by the register-blocked micro-kernel of the runtime-selected
// gemmKernel (gemm_kernel.go) — MR×NR register tile and KC/NC cache
// blocking are per-kernel properties (4×8 for go/sse, 6×16 for
// go-fma/avx2, 8×32 for avx512), with NC-wide column blocks fanned out
// over the parallel worker pool. Only genuinely tiny or pathologically
// narrow products (see gemmUsesPacked) fall back to the serial
// unblocked row kernel, where scalar code beats the packing overhead
// and the register tile's padding waste. In both regimes every output
// element is produced by exactly one worker with a fixed k-ascending
// accumulation order determined only by the problem shape, so the
// result is bit-identical for every worker count.
//
// For repeated products against one constant B (layer weights), PackB
// once and call GemmPreB: identical routing and bits, minus the
// per-call B packing (gemm_prepack.go).
//
// Zero entries in a do not short-circuit the update: 0·x follows IEEE
// semantics, so NaN and Inf in b propagate into c (pinned by
// TestGemmZeroTimesNaNPropagates).
func Gemm(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	GemmScoped(nil, transA, transB, m, n, k, alpha, a, b, beta, c)
}

// GemmScoped is Gemm with an explicit profile-attribution scope: stage
// time is added to sc (when profiling is on and sc is non-nil) as well
// as to the global counters. The infer path threads the workspace's
// scope through here; Gemm itself is GemmScoped with a nil scope.
func GemmScoped(sc *ProfileScope, transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	if len(c) < m*n {
		panic("tensor: Gemm output buffer too small")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 || alpha == 0 {
		// Degenerate product: by BLAS convention alpha==0 (and an empty
		// inner dimension) means op(a)·op(b) is not referenced and only
		// the beta scaling of c remains.
		scaleRows(c, m*n, beta)
		return
	}
	if !gemmUsesPacked(m, n, k) {
		on, t0 := profStart()
		gemmRows(transA, transB, 0, m, m, n, k, alpha, a, b, beta, c)
		profEnd(on, sc, profGemmRows, t0)
		return
	}
	gemmPacked(sc, transA, transB, m, n, k, alpha, a, b, beta, c)
}

// GemmUnblocked is the PR-1 row-parallel triple-loop kernel, kept as the
// reference implementation: the packed kernel is validated against it in
// tests and compared against it in `rhsd-bench -exp alloc`. Semantics
// match Gemm (including IEEE 0·NaN propagation); only the accumulation
// *grouping* differs, so results agree to rounding, not to the bit.
func GemmUnblocked(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	if len(c) < m*n {
		panic("tensor: Gemm output buffer too small")
	}
	if m == 0 || n == 0 {
		return
	}
	if k == 0 || alpha == 0 {
		scaleRows(c, m*n, beta)
		return
	}
	// Direct call when serial so no closure is allocated (see gemmPacked).
	if parallel.Workers() == 1 {
		gemmRows(transA, transB, 0, m, m, n, k, alpha, a, b, beta, c)
		return
	}
	parallel.For(m, parallel.GrainFor(n*k, gemmMinChunkFlops), func(i0, i1 int) {
		gemmRows(transA, transB, i0, i1, m, n, k, alpha, a, b, beta, c)
	})
}

// scaleRows applies the beta pre-scaling to the first n elements of c.
func scaleRows(c []float32, n int, beta float32) {
	cseg := c[:n]
	if beta == 0 {
		for i := range cseg {
			cseg[i] = 0
		}
	} else if beta != 1 {
		for i := range cseg {
			cseg[i] *= beta
		}
	}
}

// gemmRows computes output rows [i0, i1) of the full m×n product,
// including the beta pre-scaling of those rows. Each element c[i,j] is
// read and written only by the chunk owning row i.
//
// There is deliberately no `av == 0` fast path: skipping zero entries of
// a would suppress IEEE NaN/Inf propagation from b (0·NaN must be NaN).
func gemmRows(transA, transB bool, i0, i1, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	scaleRows(c[i0*n:], (i1-i0)*n, beta)
	switch {
	case !transA && !transB:
		// c[i,j] += alpha * a[i,p] * b[p,j]; iterate p in the middle so the
		// inner j-loop walks b and c rows contiguously.
		for i := i0; i < i1; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			for p := 0; p < k; p++ {
				av := alpha * arow[p]
				brow := b[p*n : p*n+n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	case transA && !transB:
		// a is stored k×m: a[p,i]. p stays the outer loop for b-row reuse;
		// restricting i to the chunk keeps per-element accumulation order
		// (ascending p) identical to the serial full-range sweep.
		for p := 0; p < k; p++ {
			arow := a[p*m : p*m+m]
			brow := b[p*n : p*n+n]
			for i := i0; i < i1; i++ {
				av := alpha * arow[i]
				crow := c[i*n : i*n+n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	case !transA && transB:
		// b is stored n×k: b[j,p]; dot products of contiguous rows.
		for i := i0; i < i1; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				brow := b[j*k : j*k+k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				crow[j] += alpha * s
			}
		}
	default: // transA && transB
		for i := i0; i < i1; i++ {
			crow := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				var s float32
				for p := 0; p < k; p++ {
					s += a[p*m+i] * b[j*k+p]
				}
				crow[j] += alpha * s
			}
		}
	}
}
