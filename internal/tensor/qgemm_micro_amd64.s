// AVX2 int8 micro-kernel for the packed quantized GEMM: a 4×16 int32
// register tile accumulated over kc4 4-deep k-groups.
//
//   acc[r*16+s] = Σ_g Σ_{j<4} pa[(g*4+r)*4+j] · pb[(g*16+s)*4+j]
//
// pb holds unsigned activation bytes, pa signed weight bytes, both laid
// out in 4-byte k-groups (one dword per column / row). Each step loads
// one 16-column B slice (Y12, Y13), broadcasts the 4 rows' weight
// dwords in turn (Y14) and runs the classic pre-VNNI dot-product
// sequence: VPMADDUBSW (u8·s8 pairs → int16, SATURATING), VPMADDWD
// against word-ones (int16 pairs → exact int32), VPADDD into the
// accumulators. The int16 saturation is the kernel's contract and is
// emulated exactly by qgemmMicroGoSat16; it is unreachable while every
// activation byte is ≤ 127 (see quant.go).
//
// func qgemmMicroAVX2(kc4 int, pa *int8, pb *uint8, acc *[256]int32)
#include "textflag.h"

TEXT ·qgemmMicroAVX2(SB), NOSPLIT, $0-32
	MOVQ kc4+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DI
	MOVQ acc+24(FP), DX

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

	// Y15 = 16 int16 ones, the VPMADDWD pair-sum multiplier.
	VPCMPEQW Y15, Y15, Y15
	VPSRLW   $15, Y15, Y15

qavx2loop:
	VMOVDQU (DI), Y12        // columns 0..7, one k-group dword each
	VMOVDQU 32(DI), Y13      // columns 8..15

	VPBROADCASTD (SI), Y14   // row 0 weight k-group
	VPMADDUBSW   Y14, Y12, Y10
	VPMADDWD     Y15, Y10, Y10
	VPADDD       Y10, Y0, Y0
	VPMADDUBSW   Y14, Y13, Y11
	VPMADDWD     Y15, Y11, Y11
	VPADDD       Y11, Y1, Y1

	VPBROADCASTD 4(SI), Y14  // row 1
	VPMADDUBSW   Y14, Y12, Y10
	VPMADDWD     Y15, Y10, Y10
	VPADDD       Y10, Y2, Y2
	VPMADDUBSW   Y14, Y13, Y11
	VPMADDWD     Y15, Y11, Y11
	VPADDD       Y11, Y3, Y3

	VPBROADCASTD 8(SI), Y14  // row 2
	VPMADDUBSW   Y14, Y12, Y10
	VPMADDWD     Y15, Y10, Y10
	VPADDD       Y10, Y4, Y4
	VPMADDUBSW   Y14, Y13, Y11
	VPMADDWD     Y15, Y11, Y11
	VPADDD       Y11, Y5, Y5

	VPBROADCASTD 12(SI), Y14 // row 3
	VPMADDUBSW   Y14, Y12, Y10
	VPMADDWD     Y15, Y10, Y10
	VPADDD       Y10, Y6, Y6
	VPMADDUBSW   Y14, Y13, Y11
	VPMADDWD     Y15, Y11, Y11
	VPADDD       Y11, Y7, Y7

	ADDQ $16, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  qavx2loop

	VMOVDQU Y0, (DX)
	VMOVDQU Y1, 32(DX)
	VMOVDQU Y2, 64(DX)
	VMOVDQU Y3, 96(DX)
	VMOVDQU Y4, 128(DX)
	VMOVDQU Y5, 160(DX)
	VMOVDQU Y6, 192(DX)
	VMOVDQU Y7, 224(DX)
	VZEROUPPER
	RET

// AVX-512 VNNI int8 micro-kernel: an 8×32 int32 register tile
// accumulated over kc4 4-deep k-groups.
//
//   acc[r*32+s] = Σ_g Σ_{j<4} pa[(g*8+r)*4+j] · pb[(g*32+s)*4+j]
//
// The tile lives in Z0–Z15 (two 16-dword vectors per row); Z16/Z17 hold
// the current 32-column B slice and Z18 the broadcast weight k-group.
// One VPDPBUSD per row-vector fuses the whole
// multiply-widen-pairwise-add-accumulate chain with exact int32
// arithmetic — same results as the portable exact reference on every
// input, saturation-free by construction.
//
// func qgemmMicroVNNI(kc4 int, pa *int8, pb *uint8, acc *[256]int32)
TEXT ·qgemmMicroVNNI(SB), NOSPLIT, $0-32
	MOVQ kc4+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DI
	MOVQ acc+24(FP), DX

	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7
	VPXORQ Z8, Z8, Z8
	VPXORQ Z9, Z9, Z9
	VPXORQ Z10, Z10, Z10
	VPXORQ Z11, Z11, Z11
	VPXORQ Z12, Z12, Z12
	VPXORQ Z13, Z13, Z13
	VPXORQ Z14, Z14, Z14
	VPXORQ Z15, Z15, Z15

qvnniloop:
	VMOVDQU32 (DI), Z16      // columns 0..15
	VMOVDQU32 64(DI), Z17    // columns 16..31

	VPBROADCASTD (SI), Z18   // row 0 weight k-group (signed operand)
	VPDPBUSD     Z18, Z16, Z0
	VPDPBUSD     Z18, Z17, Z1

	VPBROADCASTD 4(SI), Z18  // row 1
	VPDPBUSD     Z18, Z16, Z2
	VPDPBUSD     Z18, Z17, Z3

	VPBROADCASTD 8(SI), Z18  // row 2
	VPDPBUSD     Z18, Z16, Z4
	VPDPBUSD     Z18, Z17, Z5

	VPBROADCASTD 12(SI), Z18 // row 3
	VPDPBUSD     Z18, Z16, Z6
	VPDPBUSD     Z18, Z17, Z7

	VPBROADCASTD 16(SI), Z18 // row 4
	VPDPBUSD     Z18, Z16, Z8
	VPDPBUSD     Z18, Z17, Z9

	VPBROADCASTD 20(SI), Z18 // row 5
	VPDPBUSD     Z18, Z16, Z10
	VPDPBUSD     Z18, Z17, Z11

	VPBROADCASTD 24(SI), Z18 // row 6
	VPDPBUSD     Z18, Z16, Z12
	VPDPBUSD     Z18, Z17, Z13

	VPBROADCASTD 28(SI), Z18 // row 7
	VPDPBUSD     Z18, Z16, Z14
	VPDPBUSD     Z18, Z17, Z15

	ADDQ $32, SI
	ADDQ $128, DI
	DECQ CX
	JNZ  qvnniloop

	VMOVDQU32 Z0, (DX)
	VMOVDQU32 Z1, 64(DX)
	VMOVDQU32 Z2, 128(DX)
	VMOVDQU32 Z3, 192(DX)
	VMOVDQU32 Z4, 256(DX)
	VMOVDQU32 Z5, 320(DX)
	VMOVDQU32 Z6, 384(DX)
	VMOVDQU32 Z7, 448(DX)
	VMOVDQU32 Z8, 512(DX)
	VMOVDQU32 Z9, 576(DX)
	VMOVDQU32 Z10, 640(DX)
	VMOVDQU32 Z11, 704(DX)
	VMOVDQU32 Z12, 768(DX)
	VMOVDQU32 Z13, 832(DX)
	VMOVDQU32 Z14, 896(DX)
	VMOVDQU32 Z15, 960(DX)
	VZEROUPPER
	RET

// qinterleave4 writes dst[s*4+j] = rj[s] for s < n — the 4-deep k-group
// interleave of four source rows that the packed-B layout wants. The
// main loop transposes 16 columns per step with SSE2 byte/word unpacks
// (baseline on amd64, no feature probe needed); the scalar tail handles
// n%16. Sources must each hold n readable bytes, dst 4n writable bytes.
//
// func qinterleave4(dst *uint8, r0, r1, r2, r3 *uint8, n int)
TEXT ·qinterleave4(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ r0+8(FP), SI
	MOVQ r1+16(FP), R8
	MOVQ r2+24(FP), R9
	MOVQ r3+32(FP), R10
	MOVQ n+40(FP), CX

qil16:
	CMPQ CX, $16
	JLT  qiltail
	MOVOU (SI), X0
	MOVOU (R8), X1
	MOVOU (R9), X2
	MOVOU (R10), X3

	MOVO      X0, X4
	PUNPCKLBW X1, X4 // r0,r1 byte pairs, columns 0..7
	PUNPCKHBW X1, X0 // columns 8..15
	MOVO      X2, X5
	PUNPCKLBW X3, X5 // r2,r3 byte pairs, columns 0..7
	PUNPCKHBW X3, X2 // columns 8..15

	MOVO      X4, X6
	PUNPCKLWL X5, X6 // r0r1r2r3 dwords, columns 0..3
	PUNPCKHWL X5, X4 // columns 4..7
	MOVO      X0, X7
	PUNPCKLWL X2, X7 // columns 8..11
	PUNPCKHWL X2, X0 // columns 12..15

	MOVOU X6, (DI)
	MOVOU X4, 16(DI)
	MOVOU X7, 32(DI)
	MOVOU X0, 48(DI)

	ADDQ $16, SI
	ADDQ $16, R8
	ADDQ $16, R9
	ADDQ $16, R10
	ADDQ $64, DI
	SUBQ $16, CX
	JMP  qil16

qiltail:
	TESTQ CX, CX
	JZ    qildone

qiltailloop:
	MOVB (SI), AX
	MOVB AX, (DI)
	MOVB (R8), AX
	MOVB AX, 1(DI)
	MOVB (R9), AX
	MOVB AX, 2(DI)
	MOVB (R10), AX
	MOVB AX, 3(DI)
	INCQ SI
	INCQ R8
	INCQ R9
	INCQ R10
	ADDQ $4, DI
	DECQ CX
	JNZ  qiltailloop

qildone:
	RET
