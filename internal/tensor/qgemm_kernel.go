package tensor

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"
)

// Int8 GEMM micro-kernel registry and runtime dispatch, the quantized
// sibling of gemm_kernel.go. The packed int8 GEMM (qgemm_packed.go) is
// parameterised the same way — MR×NR register tile, KC/NC cache
// blocking — but accumulates in int32 over k-groups of 4 bytes, the
// granule both VPMADDUBSW/VPMADDWD (AVX2) and VPDPBUSD (AVX-512 VNNI)
// consume.
//
// Numerics: integer accumulation is exact, so unlike the float32
// registry there is no rounding-order concern — kernels of the "exact"
// family are bit-identical for any geometry. The AVX2 kernel is its own
// "sat16" family: VPMADDUBSW saturates the per-k-group pair sum to
// int16, which can differ from the exact sum only when an activation
// byte exceeds ActQMax (127) — impossible for values produced by
// QuantParams.Quantize, so inside the calibrated domain every kernel
// returns identical int32 sums (pinned by TestQGemmKernelDomainAgreement).
// The saturating semantics are still part of the kernel's contract and
// the qavx2 parity suite pins them against a portable twin that emulates
// the saturation exactly, over full-range u8 inputs.
const (
	qgemmMaxMR   = 8
	qgemmMaxNR   = 32
	qgemmMaxTile = qgemmMaxMR * qgemmMaxNR
)

// qmicroKind names a concrete int8 micro-kernel implementation; static
// switch dispatch for the same escape-analysis reason as microKind.
type qmicroKind uint8

const (
	qmicroGoExact qmicroKind = iota // portable exact int32 reference
	qmicroGoSat16                   // portable VPMADDUBSW-saturation reference
	qmicroAVX2x4x16
	qmicroVNNI8x32
)

// qgemmKernel describes one registered int8 micro-kernel. kc must be a
// multiple of 4 (the k-group granule) and nc a multiple of nr.
type qgemmKernel struct {
	name string
	kind qmicroKind
	ref  qmicroKind // portable bit-reference implementation
	mr   int
	nr   int
	kc   int
	nc   int
	sat  bool // int16-saturating family (VPMADDUBSW semantics)
}

func (kr *qgemmKernel) family() string {
	if kr.sat {
		return "sat16"
	}
	return "exact"
}

// refTwin returns a same-geometry copy running the portable reference —
// the comparison arm of the int8 bit-parity suites.
func (kr *qgemmKernel) refTwin() *qgemmKernel {
	twin := *kr
	twin.name = kr.name + "-ref"
	twin.kind = kr.ref
	return &twin
}

// qportableKernels are available on every architecture.
var qportableKernels = []*qgemmKernel{
	{name: "qgo", kind: qmicroGoExact, ref: qmicroGoExact, mr: 4, nr: 16, kc: 256, nc: 128},
}

// qgemmActive is the kernel quantized GEMMs dispatch to.
var qgemmActive atomic.Pointer[qgemmKernel]

// qgemmEnvRequest records the RHSD_QGEMM_KERNEL override, mirroring
// gemmEnvRequest for the quantized kernel matrix.
var qgemmEnvRequest struct {
	name    string
	present bool
	honored bool
}

func allQGemmKernels() []*qgemmKernel {
	ks := append([]*qgemmKernel(nil), qportableKernels...)
	return append(ks, qarchKernels...)
}

func lookupQGemmKernel(name string) *qgemmKernel {
	for _, kr := range allQGemmKernels() {
		if kr.name == name {
			return kr
		}
	}
	return nil
}

// QGemmKernels lists every registered int8 kernel name, available or
// not, sorted for stable output.
func QGemmKernels() []string {
	var names []string
	for _, kr := range allQGemmKernels() {
		names = append(names, kr.name)
	}
	sort.Strings(names)
	return names
}

// QGemmKernelAvailable reports whether the named int8 kernel is
// registered and safe to execute on this machine.
func QGemmKernelAvailable(name string) bool {
	kr := lookupQGemmKernel(name)
	return kr != nil && qarchKernelUsable(kr)
}

// QGemmKernel returns the name of the active int8 kernel.
func QGemmKernel() string { return qgemmActive.Load().name }

// QGemmKernelFamily returns "exact" or "sat16" for a registered int8
// kernel, "" when unknown. Exact-family kernels produce bit-identical
// int32 sums on any input; the sat16 family matches them everywhere
// inside the calibrated activation domain (bytes ≤ ActQMax).
func QGemmKernelFamily(name string) string {
	kr := lookupQGemmKernel(name)
	if kr == nil {
		return ""
	}
	return kr.family()
}

// SetQGemmKernel makes the quantized GEMM dispatch to the named kernel
// and returns the previously active name; unknown or unsupported names
// error and leave dispatch unchanged. The swap is atomic, like
// SetGemmKernel. Note layers pre-pack their quantized weights for every
// usable kernel, so a swap needs no repacking (nn/quant.go).
func SetQGemmKernel(name string) (prev string, err error) {
	kr := lookupQGemmKernel(name)
	if kr == nil {
		return QGemmKernel(), fmt.Errorf("tensor: unknown int8 GEMM kernel %q (have %v)", name, QGemmKernels())
	}
	if !qarchKernelUsable(kr) {
		return QGemmKernel(), fmt.Errorf("tensor: int8 GEMM kernel %q unsupported on this CPU", name)
	}
	old := qgemmActive.Swap(kr)
	return old.name, nil
}

// RequestedQGemmKernel reports the RHSD_QGEMM_KERNEL override: requested
// name, whether the variable was set, and whether it was honored.
func RequestedQGemmKernel() (name string, present, honored bool) {
	return qgemmEnvRequest.name, qgemmEnvRequest.present, qgemmEnvRequest.honored
}

func init() {
	var pick *qgemmKernel
	for _, name := range qarchPreferred {
		if kr := lookupQGemmKernel(name); kr != nil && qarchKernelUsable(kr) {
			pick = kr
			break
		}
	}
	if pick == nil {
		pick = lookupQGemmKernel("qgo")
	}
	qgemmActive.Store(pick)

	if env, ok := os.LookupEnv("RHSD_QGEMM_KERNEL"); ok {
		qgemmEnvRequest.name = env
		qgemmEnvRequest.present = true
		if _, err := SetQGemmKernel(env); err != nil {
			fmt.Fprintf(os.Stderr, "tensor: RHSD_QGEMM_KERNEL: %v; using %q\n", err, QGemmKernel())
		} else {
			qgemmEnvRequest.honored = true
		}
	}
}

// qgemmMicroGoExact is the portable exact reference:
//
//	acc[r*nr+s] = Σ_g Σ_{j<4} pa[(g*mr+r)*4+j] · pb[(g*nr+s)*4+j]
//
// over kc4 k-groups, with unsigned activation bytes (pb) and signed
// weight bytes (pa) widened to int32 before the multiply — the
// VPDPBUSD semantics.
func qgemmMicroGoExact(mr, nr, kc4 int, pa []int8, pb []uint8, acc *[qgemmMaxTile]int32) {
	tile := acc[:mr*nr]
	for i := range tile {
		tile[i] = 0
	}
	pa = pa[:kc4*mr*4]
	pb = pb[:kc4*nr*4]
	for g := 0; g < kc4; g++ {
		ag := pa[g*mr*4 : (g*mr+mr)*4]
		bg := pb[g*nr*4 : (g*nr+nr)*4]
		for r := 0; r < mr; r++ {
			a0 := int32(ag[r*4])
			a1 := int32(ag[r*4+1])
			a2 := int32(ag[r*4+2])
			a3 := int32(ag[r*4+3])
			row := tile[r*nr : r*nr+nr]
			for s := 0; s < nr; s++ {
				row[s] += a0*int32(bg[s*4]) + a1*int32(bg[s*4+1]) +
					a2*int32(bg[s*4+2]) + a3*int32(bg[s*4+3])
			}
		}
	}
}

// qgemmMicroGoSat16 is the portable reference for the AVX2 kernel: per
// k-group, byte pairs are combined into int16 with saturation
// (VPMADDUBSW), then the two pair sums are added exactly (VPMADDWD
// against ones cannot overflow: |sum| ≤ 2·32768). Identical to the
// exact reference whenever every activation byte is ≤ ActQMax.
func qgemmMicroGoSat16(mr, nr, kc4 int, pa []int8, pb []uint8, acc *[qgemmMaxTile]int32) {
	tile := acc[:mr*nr]
	for i := range tile {
		tile[i] = 0
	}
	pa = pa[:kc4*mr*4]
	pb = pb[:kc4*nr*4]
	for g := 0; g < kc4; g++ {
		ag := pa[g*mr*4 : (g*mr+mr)*4]
		bg := pb[g*nr*4 : (g*nr+nr)*4]
		for r := 0; r < mr; r++ {
			a0 := int32(ag[r*4])
			a1 := int32(ag[r*4+1])
			a2 := int32(ag[r*4+2])
			a3 := int32(ag[r*4+3])
			row := tile[r*nr : r*nr+nr]
			for s := 0; s < nr; s++ {
				lo := sat16(int32(bg[s*4])*a0 + int32(bg[s*4+1])*a1)
				hi := sat16(int32(bg[s*4+2])*a2 + int32(bg[s*4+3])*a3)
				row[s] += lo + hi
			}
		}
	}
}

func sat16(v int32) int32 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return v
}
