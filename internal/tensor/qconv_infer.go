package tensor

import (
	"fmt"

	"rhsd/internal/parallel"
)

// QConv2DInfer is Conv2DInfer on the int8 path: the input activations
// are quantized per-tensor to uint8 (pooled scratch, not workspace —
// the Workspace arena is float32-only), B panels are packed straight
// from the quantized image (im2col stays fused, never materialized),
// the weights come pre-packed from the plan, and the epilogue fuses
// dequantization with the bias + leaky-ReLU tail. Output is float32 in
// workspace memory, same contract as Conv2DInfer.
func QConv2DInfer(ws *Workspace, x *Tensor, plan *QConvPlan, o ConvOpts, ep Epilogue) *Tensor {
	o.check()
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oc, kk := plan.W.OC, plan.W.KK
	if kk != c*o.Kernel*o.Kernel {
		panic(fmt.Sprintf("tensor: QConv2DInfer plan k=%d incompatible with input %v opts %+v",
			kk, x.shape, o))
	}
	oh, ow := o.OutDim(h), o.OutDim(w)
	out := ws.Tensor(n, oc, oh, ow)

	kr := qgemmActive.Load()
	pa := plan.W.packed[kr.name]
	if pa == nil {
		panic(fmt.Sprintf("tensor: QConv2DInfer weights not packed for int8 kernel %q", kr.name))
	}

	xq := qbytePool.get(n * c * h * w)
	sc := ws.ProfileScope()
	plan.In.quantizeSliceScoped(sc, xq, x.data)

	var bias []float32
	if ep.Bias != nil {
		bias = ep.Bias.data
	}
	qep := qepilogue{
		deqScale: plan.DeqScale,
		corr:     plan.Corr,
		bias:     bias,
		act:      ep.Act,
		slope:    ep.Slope,
	}
	if n == 1 || parallel.Workers() == 1 {
		qconv2dInferItems(kr, sc, xq, pa, out.data, c, h, w, oc, kk, o, plan.In.Zero, qep, 0, n)
	} else {
		parallel.For(n, 1, func(n0, n1 int) {
			qconv2dInferItems(kr, sc, xq, pa, out.data, c, h, w, oc, kk, o, plan.In.Zero, qep, n0, n1)
		})
	}
	qbytePool.put(xq)
	return out
}

// qconv2dInferItems multiplies batch items [n0, n1) with B panels
// packed directly from each quantized image.
func qconv2dInferItems(kr *qgemmKernel, sc *ProfileScope, xq []uint8, pa []int8, od []float32, c, h, w, oc, kk int, o ConvOpts, zero uint8, qep qepilogue, n0, n1 int) {
	oh, ow := o.OutDim(h), o.OutDim(w)
	for i := n0; i < n1; i++ {
		bs := qim2colB(xq[i*c*h*w:(i+1)*c*h*w], c, h, w, o, zero)
		dst := od[i*oc*oh*ow : (i+1)*oc*oh*ow]
		qgemmPackedScoped(kr, sc, oc, oh*ow, kk, pa, bs, qep, dst)
	}
}
