// SSE micro-kernel for the packed GEMM: a 4×8 register tile accumulated
// over kc packed steps.
//
//   acc[r*8+s] = Σ_p pa[p*4+r] · pb[p*8+s]
//
// The 4×8 tile lives in X0–X7 (two 4-lane vectors per row). Each step
// loads one 8-wide B slice (X8, X9), broadcasts the 4 A values in turn
// (X12) and does mul-then-add per row — MOVAPS+MULPS+ADDPS, not FMA, so
// every lane rounds exactly like the portable Go kernel.
//
// func gemmMicro4x8SSE(kc int, pa, pb *float32, acc *[32]float32)
#include "textflag.h"

TEXT ·gemmMicro4x8SSE(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DI
	MOVQ acc+24(FP), DX

	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

loop:
	MOVUPS (DI), X8      // b0..b3
	MOVUPS 16(DI), X9    // b4..b7

	MOVSS  (SI), X12     // a0
	SHUFPS $0x00, X12, X12
	MOVAPS X8, X10
	MOVAPS X9, X11
	MULPS  X12, X10
	MULPS  X12, X11
	ADDPS  X10, X0
	ADDPS  X11, X1

	MOVSS  4(SI), X12    // a1
	SHUFPS $0x00, X12, X12
	MOVAPS X8, X10
	MOVAPS X9, X11
	MULPS  X12, X10
	MULPS  X12, X11
	ADDPS  X10, X2
	ADDPS  X11, X3

	MOVSS  8(SI), X12    // a2
	SHUFPS $0x00, X12, X12
	MOVAPS X8, X10
	MOVAPS X9, X11
	MULPS  X12, X10
	MULPS  X12, X11
	ADDPS  X10, X4
	ADDPS  X11, X5

	MOVSS  12(SI), X12   // a3
	SHUFPS $0x00, X12, X12
	MOVAPS X8, X10
	MOVAPS X9, X11
	MULPS  X12, X10
	MULPS  X12, X11
	ADDPS  X10, X6
	ADDPS  X11, X7

	ADDQ $16, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

	MOVUPS X0, (DX)
	MOVUPS X1, 16(DX)
	MOVUPS X2, 32(DX)
	MOVUPS X3, 48(DX)
	MOVUPS X4, 64(DX)
	MOVUPS X5, 80(DX)
	MOVUPS X6, 96(DX)
	MOVUPS X7, 112(DX)
	RET

// AVX2+FMA micro-kernel: a 6×16 register tile accumulated over kc packed
// steps.
//
//   acc[r*16+s] = Σ_p pa[p*6+r] · pb[p*16+s]
//
// The 6×16 tile lives in Y0–Y11 (two 8-lane vectors per row). Each step
// loads one 16-wide B slice (Y12, Y13), broadcasts the 6 A values in
// turn (Y14) and issues VFMADD231PS — one rounding per step, exactly the
// semantics of the math.FMA Go reference (gemmMicroGoFMARef).
//
// func gemmMicroAVX2(kc int, pa, pb *float32, acc *[256]float32)
TEXT ·gemmMicroAVX2(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DI
	MOVQ acc+24(FP), DX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11

avx2loop:
	VMOVUPS (DI), Y12        // b0..b7
	VMOVUPS 32(DI), Y13      // b8..b15

	VBROADCASTSS (SI), Y14   // a0
	VFMADD231PS  Y12, Y14, Y0
	VFMADD231PS  Y13, Y14, Y1

	VBROADCASTSS 4(SI), Y14  // a1
	VFMADD231PS  Y12, Y14, Y2
	VFMADD231PS  Y13, Y14, Y3

	VBROADCASTSS 8(SI), Y14  // a2
	VFMADD231PS  Y12, Y14, Y4
	VFMADD231PS  Y13, Y14, Y5

	VBROADCASTSS 12(SI), Y14 // a3
	VFMADD231PS  Y12, Y14, Y6
	VFMADD231PS  Y13, Y14, Y7

	VBROADCASTSS 16(SI), Y14 // a4
	VFMADD231PS  Y12, Y14, Y8
	VFMADD231PS  Y13, Y14, Y9

	VBROADCASTSS 20(SI), Y14 // a5
	VFMADD231PS  Y12, Y14, Y10
	VFMADD231PS  Y13, Y14, Y11

	ADDQ $24, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  avx2loop

	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	VMOVUPS Y2, 64(DX)
	VMOVUPS Y3, 96(DX)
	VMOVUPS Y4, 128(DX)
	VMOVUPS Y5, 160(DX)
	VMOVUPS Y6, 192(DX)
	VMOVUPS Y7, 224(DX)
	VMOVUPS Y8, 256(DX)
	VMOVUPS Y9, 288(DX)
	VMOVUPS Y10, 320(DX)
	VMOVUPS Y11, 352(DX)
	VZEROUPPER
	RET

// AVX-512F micro-kernel: an 8×32 register tile accumulated over kc
// packed steps.
//
//   acc[r*32+s] = Σ_p pa[p*8+r] · pb[p*32+s]
//
// The 8×32 tile lives in Z0–Z15 (two 16-lane vectors per row); Z16/Z17
// hold the current 32-wide B slice and Z18 the broadcast A value. Same
// FMA rounding family as the AVX2 kernel and the math.FMA reference.
//
// func gemmMicroAVX512(kc int, pa, pb *float32, acc *[256]float32)
TEXT ·gemmMicroAVX512(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DI
	MOVQ acc+24(FP), DX

	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	VPXORQ Z6, Z6, Z6
	VPXORQ Z7, Z7, Z7
	VPXORQ Z8, Z8, Z8
	VPXORQ Z9, Z9, Z9
	VPXORQ Z10, Z10, Z10
	VPXORQ Z11, Z11, Z11
	VPXORQ Z12, Z12, Z12
	VPXORQ Z13, Z13, Z13
	VPXORQ Z14, Z14, Z14
	VPXORQ Z15, Z15, Z15

avx512loop:
	VMOVUPS (DI), Z16        // b0..b15
	VMOVUPS 64(DI), Z17      // b16..b31

	VBROADCASTSS (SI), Z18   // a0
	VFMADD231PS  Z16, Z18, Z0
	VFMADD231PS  Z17, Z18, Z1

	VBROADCASTSS 4(SI), Z18  // a1
	VFMADD231PS  Z16, Z18, Z2
	VFMADD231PS  Z17, Z18, Z3

	VBROADCASTSS 8(SI), Z18  // a2
	VFMADD231PS  Z16, Z18, Z4
	VFMADD231PS  Z17, Z18, Z5

	VBROADCASTSS 12(SI), Z18 // a3
	VFMADD231PS  Z16, Z18, Z6
	VFMADD231PS  Z17, Z18, Z7

	VBROADCASTSS 16(SI), Z18 // a4
	VFMADD231PS  Z16, Z18, Z8
	VFMADD231PS  Z17, Z18, Z9

	VBROADCASTSS 20(SI), Z18 // a5
	VFMADD231PS  Z16, Z18, Z10
	VFMADD231PS  Z17, Z18, Z11

	VBROADCASTSS 24(SI), Z18 // a6
	VFMADD231PS  Z16, Z18, Z12
	VFMADD231PS  Z17, Z18, Z13

	VBROADCASTSS 28(SI), Z18 // a7
	VFMADD231PS  Z16, Z18, Z14
	VFMADD231PS  Z17, Z18, Z15

	ADDQ $32, SI
	ADDQ $128, DI
	DECQ CX
	JNZ  avx512loop

	VMOVUPS Z0, (DX)
	VMOVUPS Z1, 64(DX)
	VMOVUPS Z2, 128(DX)
	VMOVUPS Z3, 192(DX)
	VMOVUPS Z4, 256(DX)
	VMOVUPS Z5, 320(DX)
	VMOVUPS Z6, 384(DX)
	VMOVUPS Z7, 448(DX)
	VMOVUPS Z8, 512(DX)
	VMOVUPS Z9, 576(DX)
	VMOVUPS Z10, 640(DX)
	VMOVUPS Z11, 704(DX)
	VMOVUPS Z12, 768(DX)
	VMOVUPS Z13, 832(DX)
	VMOVUPS Z14, 896(DX)
	VMOVUPS Z15, 960(DX)
	VZEROUPPER
	RET
