// SSE micro-kernel for the packed GEMM: a 4×8 register tile accumulated
// over kc packed steps.
//
//   acc[r*8+s] = Σ_p pa[p*4+r] · pb[p*8+s]
//
// The 4×8 tile lives in X0–X7 (two 4-lane vectors per row). Each step
// loads one 8-wide B slice (X8, X9), broadcasts the 4 A values in turn
// (X12) and does mul-then-add per row — MOVAPS+MULPS+ADDPS, not FMA, so
// every lane rounds exactly like the portable Go kernel.
//
// func gemmMicro4x8SSE(kc int, pa, pb *float32, acc *[32]float32)
#include "textflag.h"

TEXT ·gemmMicro4x8SSE(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DI
	MOVQ acc+24(FP), DX

	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

loop:
	MOVUPS (DI), X8      // b0..b3
	MOVUPS 16(DI), X9    // b4..b7

	MOVSS  (SI), X12     // a0
	SHUFPS $0x00, X12, X12
	MOVAPS X8, X10
	MOVAPS X9, X11
	MULPS  X12, X10
	MULPS  X12, X11
	ADDPS  X10, X0
	ADDPS  X11, X1

	MOVSS  4(SI), X12    // a1
	SHUFPS $0x00, X12, X12
	MOVAPS X8, X10
	MOVAPS X9, X11
	MULPS  X12, X10
	MULPS  X12, X11
	ADDPS  X10, X2
	ADDPS  X11, X3

	MOVSS  8(SI), X12    // a2
	SHUFPS $0x00, X12, X12
	MOVAPS X8, X10
	MOVAPS X9, X11
	MULPS  X12, X10
	MULPS  X12, X11
	ADDPS  X10, X4
	ADDPS  X11, X5

	MOVSS  12(SI), X12   // a3
	SHUFPS $0x00, X12, X12
	MOVAPS X8, X10
	MOVAPS X9, X11
	MULPS  X12, X10
	MULPS  X12, X11
	ADDPS  X10, X6
	ADDPS  X11, X7

	ADDQ $16, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

	MOVUPS X0, (DX)
	MOVUPS X1, 16(DX)
	MOVUPS X2, 32(DX)
	MOVUPS X3, 48(DX)
	MOVUPS X4, 64(DX)
	MOVUPS X5, 80(DX)
	MOVUPS X6, 96(DX)
	MOVUPS X7, 112(DX)
	RET
