package tensor

import (
	"fmt"
	"os"
	"testing"
)

// Opt-in KC/NC cache-block sweep, the measurement behind the per-kernel
// blocking defaults in gemm_micro_amd64.go and qgemm_micro_amd64.go:
//
//	RHSD_BLOCK_SWEEP=1 go test ./internal/tensor -run '^$' -bench BlockSweep -benchtime 200ms
//
// The sweep clones the registered kernels with candidate geometries and
// times the full packed GEMM at representative backbone shapes. It is
// explicitly opt-in: blocking choices are host-dependent and the suite
// must stay fast and deterministic by default.
//
// Constraint reminder when retuning from its output: fp32 KC must stay
// equal across every kernel of one rounding family (the KC grouping of
// the k-sum is part of the family's bit-stability contract); NC is
// numerics-free on both paths, and the int8 kernels' integer
// accumulation is exact so even their KC may differ per kernel. NC must
// remain a multiple of NR (pack-buffer sizing), KC a multiple of 4 on
// the int8 path.

// sweepShapes are (m, k, n) GEMM shapes from the detection backbone:
// the headline bench shape [64×576×3136] (64-out 3×3 conv over 64
// channels at 56×56) and a deeper, narrower late-stage shape.
var sweepShapes = [][3]int{
	{64, 576, 3136},
	{128, 1152, 784},
}

func BenchmarkGemmBlockSweep(b *testing.B) {
	if os.Getenv("RHSD_BLOCK_SWEEP") == "" {
		b.Skip("set RHSD_BLOCK_SWEEP=1 to run the cache-block sweep")
	}
	kcs := []int{128, 192, 256, 384, 512}
	ncs := []int{64, 128, 256, 512, 1024}
	for _, base := range allGemmKernels() {
		if !archKernelUsable(base) {
			continue
		}
		for _, kc := range kcs {
			for _, nc := range ncs {
				if nc%base.nr != 0 {
					continue
				}
				kr := *base
				kr.kc, kr.nc = kc, nc
				for _, sh := range sweepShapes {
					m, k, n := sh[0], sh[1], sh[2]
					a := make([]float32, m*k)
					bm := make([]float32, k*n)
					c := make([]float32, m*n)
					for i := range a {
						a[i] = float32(i%17) * 0.25
					}
					for i := range bm {
						bm[i] = float32(i%13) * 0.5
					}
					name := fmt.Sprintf("%s/kc%d/nc%d/%dx%dx%d", base.name, kc, nc, m, k, n)
					b.Run(name, func(b *testing.B) {
						b.SetBytes(int64(2 * m * n * k))
						for i := 0; i < b.N; i++ {
							gemmPackedWith(&kr, false, m, n, k, 1, a, denseB(false, k, n, bm), 0, c)
						}
					})
				}
			}
		}
	}
}

func BenchmarkQGemmBlockSweep(b *testing.B) {
	if os.Getenv("RHSD_BLOCK_SWEEP") == "" {
		b.Skip("set RHSD_BLOCK_SWEEP=1 to run the cache-block sweep")
	}
	kcs := []int{128, 256, 384, 512, 768, 1024}
	ncs := []int{64, 128, 256, 512, 1024}
	for _, base := range allQGemmKernels() {
		if !qarchKernelUsable(base) {
			continue
		}
		for _, kc := range kcs {
			for _, nc := range ncs {
				if nc%base.nr != 0 || kc%4 != 0 {
					continue
				}
				kr := *base
				kr.kc, kr.nc = kc, nc
				for _, sh := range sweepShapes {
					m, k, n := sh[0], sh[1], sh[2]
					aq := make([]int8, m*k)
					bq := make([]uint8, k*n)
					for i := range aq {
						aq[i] = int8(i%255 - 127)
					}
					for i := range bq {
						bq[i] = uint8(i % (ActQMax + 1))
					}
					ep := qtestEpilogue(m)
					pa := make([]int8, qgemmPackedSize(&kr, m, k))
					qpackA(&kr, m, k, aq, pa)
					c := make([]float32, m*n)
					name := fmt.Sprintf("%s/kc%d/nc%d/%dx%dx%d", base.name, kc, nc, m, k, n)
					b.Run(name, func(b *testing.B) {
						b.SetBytes(int64(2 * m * n * k))
						for i := 0; i < b.N; i++ {
							qgemmPackedWith(&kr, m, n, k, pa, qdenseB(k, n, bq), ep, c)
						}
					})
				}
			}
		}
	}
}
