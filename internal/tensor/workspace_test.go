package tensor

import "testing"

func TestWorkspaceReuseAfterReset(t *testing.T) {
	ws := NewWorkspace()
	b1 := ws.Get(100)
	if len(b1) != 100 {
		t.Fatalf("Get(100) returned len %d", len(b1))
	}
	t1 := ws.Tensor(3, 5)
	if got := t1.Shape(); got[0] != 3 || got[1] != 5 {
		t.Fatalf("Tensor shape = %v", got)
	}
	ws.Reset()

	// Same size classes after Reset → same backing arrays, no growth.
	b2 := ws.Get(100)
	if &b1[0] != &b2[0] {
		t.Error("Get after Reset did not reuse the freed buffer")
	}
	t2 := ws.Tensor(5, 3)
	if t1 != t2 {
		t.Error("Tensor header was not recycled after Reset")
	}
	if got := t2.Shape(); got[0] != 5 || got[1] != 3 {
		t.Fatalf("recycled header shape = %v", got)
	}

	// Steady state: identical request sequence allocates nothing.
	allocs := testing.AllocsPerRun(20, func() {
		ws.Reset()
		_ = ws.Get(100)
		_ = ws.Tensor(5, 3)
		_ = ws.View(b2, 10, 10)
	})
	if allocs != 0 {
		t.Errorf("steady-state workspace use allocated %.0f times per run, want 0", allocs)
	}
}

func TestWorkspaceZeroed(t *testing.T) {
	ws := NewWorkspace()
	s := ws.Get(64)
	for i := range s {
		s[i] = 7
	}
	ws.Reset()
	z := ws.GetZeroed(64)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed[%d] = %v", i, v)
		}
	}
	ws.Reset()
	zt := ws.ZeroTensor(8, 8)
	for i, v := range zt.Data() {
		if v != 0 {
			t.Fatalf("ZeroTensor data[%d] = %v", i, v)
		}
	}
}

func TestWorkspaceNilFallback(t *testing.T) {
	var ws *Workspace
	if got := len(ws.Get(10)); got != 10 {
		t.Fatalf("nil Get len = %d", got)
	}
	tt := ws.Tensor(2, 3)
	if got := tt.Shape(); got[0] != 2 || got[1] != 3 {
		t.Fatalf("nil Tensor shape = %v", got)
	}
	v := ws.View(make([]float32, 6), 3, 2)
	if got := v.Shape(); got[0] != 3 || got[1] != 2 {
		t.Fatalf("nil View shape = %v", got)
	}
	ws.Reset() // must not panic
	if ws.Footprint() != 0 {
		t.Fatal("nil Footprint != 0")
	}
}

func TestWorkspaceViewLengthCheck(t *testing.T) {
	ws := NewWorkspace()
	defer func() {
		if recover() == nil {
			t.Fatal("View with mismatched length did not panic")
		}
	}()
	ws.View(make([]float32, 5), 2, 3)
}

func TestWorkspaceTrim(t *testing.T) {
	ws := NewWorkspace()
	small := ws.Get(100)     // 128-float class
	large := ws.Get(1 << 20) // 1Mi-float class
	_ = large
	ws.Reset()

	if fp := ws.Footprint(); fp != 128+1<<20 {
		t.Fatalf("footprint before trim = %d, want %d", fp, 128+1<<20)
	}
	// A budget above the footprint is a no-op.
	ws.Trim(2 << 20)
	if fp := ws.Footprint(); fp != 128+1<<20 {
		t.Fatalf("over-budget Trim changed footprint to %d", fp)
	}
	// Trimming evicts the largest class first, keeping small classes warm.
	ws.Trim(1 << 10)
	if fp := ws.Footprint(); fp > 1<<10 {
		t.Fatalf("footprint after Trim(1024) = %d, want ≤ 1024", fp)
	}
	if b := ws.Get(100); &b[0] != &small[0] {
		t.Error("Trim evicted the small class; want largest-first eviction")
	}
	ws.Reset()

	// Live buffers are never trimmed.
	live := ws.Get(1 << 16)
	ws.Trim(0)
	if fp := ws.Footprint(); fp < 1<<16 {
		t.Fatalf("Trim(0) released a live buffer: footprint %d", fp)
	}
	live[0] = 3 // must still be usable
	ws.Reset()
	ws.Trim(0)
	if fp := ws.Footprint(); fp != 0 {
		t.Fatalf("Trim(0) after Reset left footprint %d", fp)
	}

	// Nil workspace: no-op, no panic.
	var nil_ *Workspace
	nil_.Trim(0)
}
