// Package tensor implements dense float32 N-dimensional tensors and the
// numerical kernels needed by the neural-network layers in internal/nn:
// matrix multiplication, im2col/col2im, padding, channel concatenation and
// simple element-wise arithmetic.
//
// The layout is row-major ("C order"): the last axis varies fastest. All
// convolutional code in this repository uses the NCHW convention — batch,
// channels, height, width.
//
// Tensors are mutable value containers; operations either allocate a fresh
// result or write into an explicit destination, and none of them retain
// references to their inputs.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's storage with a new shape of the same
// volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			// Static message: formatting idx here would leak the variadic
			// slice and make every At/Set call heap-allocate its indices.
			panic("tensor: index out of range")
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a short human-readable description.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	}
	return b.String()
}

// Add accumulates o into t element-wise. Shapes must match exactly.
func (t *Tensor) Add(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", t.shape, o.shape))
	}
	for i, v := range o.data {
		t.data[i] += v
	}
}

// Sub subtracts o from t element-wise.
func (t *Tensor) Sub(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", t.shape, o.shape))
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AXPY computes t += a*o, the BLAS axpy primitive.
func (t *Tensor) AXPY(a float32, o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AXPY shape mismatch %v vs %v", t.shape, o.shape))
	}
	for i, v := range o.data {
		t.data[i] += a * v
	}
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	if len(t.data) != len(o.data) {
		panic("tensor: Dot length mismatch")
	}
	var s float64
	for i, v := range t.data {
		s += float64(v) * float64(o.data[i])
	}
	return s
}

// SumSquares returns the sum of squared elements as float64 for stability.
func (t *Tensor) SumSquares() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return s
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// RandN fills t with N(0, std) samples drawn from rng.
func (t *Tensor) RandN(rng *rand.Rand, std float64) {
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64() * std)
	}
}

// RandUniform fills t with uniform samples in [lo, hi).
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// HeInit fills t with the He-normal initialization for a layer with the
// given fan-in, the standard choice before ReLU nonlinearities.
func (t *Tensor) HeInit(rng *rand.Rand, fanIn int) {
	if fanIn <= 0 {
		fanIn = 1
	}
	t.RandN(rng, math.Sqrt(2.0/float64(fanIn)))
}
