package tensor

import (
	"math"
	"math/rand"
	"testing"

	"rhsd/internal/parallel"
)

// runAtWorkers executes f under a fixed worker count and returns its
// result, restoring the previous count afterwards.
func runAtWorkers[T any](n int, f func() T) T {
	prev := parallel.SetWorkers(n)
	defer parallel.SetWorkers(prev)
	return f()
}

// assertBitIdentical fails unless the two float32 slices match to the bit
// (NaN-safe via Float32bits).
func assertBitIdentical(t *testing.T, label string, serial, par []float32) {
	t.Helper()
	if len(serial) != len(par) {
		t.Fatalf("%s: length %d (serial) vs %d (parallel)", label, len(serial), len(par))
	}
	for i := range serial {
		if math.Float32bits(serial[i]) != math.Float32bits(par[i]) {
			t.Fatalf("%s: element %d differs: serial %v (%#08x) parallel %v (%#08x)",
				label, i, serial[i], math.Float32bits(serial[i]), par[i], math.Float32bits(par[i]))
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// parityWorkers are the two ends compared everywhere: the serial fallback
// and an oversubscribed pool (8 workers regardless of NumCPU), matching
// RHSD_WORKERS=1 vs RHSD_WORKERS=8.
const (
	parityWorkersSerial   = 1
	parityWorkersParallel = 8
)

func TestGemmParityAcrossWorkerCounts(t *testing.T) {
	shapes := []struct{ m, n, k int }{
		{1, 1, 1},
		{3, 7, 5},    // tiny odd shape
		{17, 13, 9},  // not divisible by 8 anywhere
		{64, 56, 33}, // one axis worker-divisible, others not
		{5, 1, 8},
		{129, 67, 31}, // big enough to cross the parallel cutoff
		{0, 4, 4},     // zero-size edges
		{4, 0, 4},
		{4, 4, 0},
	}
	scalars := []struct{ alpha, beta float32 }{
		{1, 0},
		{0.5, 1},
		{-1.25, 0.75},
	}
	for _, sh := range shapes {
		for _, sc := range scalars {
			for _, transA := range []bool{false, true} {
				for _, transB := range []bool{false, true} {
					rng := rand.New(rand.NewSource(7))
					a := randSlice(rng, sh.m*sh.k)
					b := randSlice(rng, sh.k*sh.n)
					cInit := randSlice(rng, sh.m*sh.n)
					run := func(workers int) []float32 {
						return runAtWorkers(workers, func() []float32 {
							c := append([]float32(nil), cInit...)
							Gemm(transA, transB, sh.m, sh.n, sh.k, sc.alpha, a, b, sc.beta, c)
							return c
						})
					}
					serial := run(parityWorkersSerial)
					par := run(parityWorkersParallel)
					label := "Gemm"
					if transA {
						label += " transA"
					}
					if transB {
						label += " transB"
					}
					assertBitIdentical(t, label, serial, par)
				}
			}
		}
	}
}

func TestConv2DParityAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		n, c, h, w, oc int
		o              ConvOpts
	}{
		{1, 1, 5, 5, 2, ConvOpts{Kernel: 3, Stride: 1, Padding: 1}},
		{2, 3, 9, 7, 4, ConvOpts{Kernel: 3, Stride: 2, Padding: 1}}, // odd spatial, batch 2
		{3, 2, 11, 11, 3, ConvOpts{Kernel: 5, Stride: 1, Padding: 2}},
		{7, 5, 13, 9, 6, ConvOpts{Kernel: 3, Stride: 1, Padding: 0}}, // batch not divisible by 8
		{0, 2, 6, 6, 2, ConvOpts{Kernel: 3, Stride: 1, Padding: 1}},  // zero batch
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(11))
		x := New(tc.n, tc.c, tc.h, tc.w)
		x.RandN(rng, 1)
		wgt := New(tc.oc, tc.c, tc.o.Kernel, tc.o.Kernel)
		wgt.RandN(rng, 1)
		bias := New(tc.oc)
		bias.RandN(rng, 1)
		run := func(workers int) []float32 {
			return runAtWorkers(workers, func() []float32 {
				return Conv2D(x, wgt, bias, tc.o).Data()
			})
		}
		assertBitIdentical(t, "Conv2D", run(parityWorkersSerial), run(parityWorkersParallel))
	}
}

func TestConv2DBackwardParityAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		n, c, h, w, oc int
		o              ConvOpts
	}{
		{1, 2, 7, 7, 3, ConvOpts{Kernel: 3, Stride: 1, Padding: 1}},
		{5, 3, 9, 11, 4, ConvOpts{Kernel: 3, Stride: 2, Padding: 1}},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(13))
		x := New(tc.n, tc.c, tc.h, tc.w)
		x.RandN(rng, 1)
		wgt := New(tc.oc, tc.c, tc.o.Kernel, tc.o.Kernel)
		wgt.RandN(rng, 1)
		oh, ow := tc.o.OutDim(tc.h), tc.o.OutDim(tc.w)
		gy := New(tc.n, tc.oc, oh, ow)
		gy.RandN(rng, 1)
		type grads struct{ dx, dw, db []float32 }
		run := func(workers int) grads {
			return runAtWorkers(workers, func() grads {
				dw := New(tc.oc, tc.c, tc.o.Kernel, tc.o.Kernel)
				db := New(tc.oc)
				dx := Conv2DBackward(x, wgt, gy, dw, db, tc.o)
				return grads{dx.Data(), dw.Data(), db.Data()}
			})
		}
		serial, par := run(parityWorkersSerial), run(parityWorkersParallel)
		assertBitIdentical(t, "Conv2DBackward dx", serial.dx, par.dx)
		assertBitIdentical(t, "Conv2DBackward dw", serial.dw, par.dw)
		assertBitIdentical(t, "Conv2DBackward db", serial.db, par.db)
	}
}

func TestDeconv2DParityAcrossWorkerCounts(t *testing.T) {
	cases := []struct {
		n, c, h, w, oc int
		o              ConvOpts
	}{
		{1, 2, 5, 5, 3, ConvOpts{Kernel: 3, Stride: 1, Padding: 1}},
		{3, 4, 7, 9, 2, ConvOpts{Kernel: 3, Stride: 2, Padding: 1}},
		{0, 2, 4, 4, 2, ConvOpts{Kernel: 3, Stride: 1, Padding: 1}}, // zero batch
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(17))
		x := New(tc.n, tc.c, tc.h, tc.w)
		x.RandN(rng, 1)
		wgt := New(tc.c, tc.oc, tc.o.Kernel, tc.o.Kernel)
		wgt.RandN(rng, 1)
		bias := New(tc.oc)
		bias.RandN(rng, 1)
		run := func(workers int) []float32 {
			return runAtWorkers(workers, func() []float32 {
				return Deconv2D(x, wgt, bias, tc.o).Data()
			})
		}
		assertBitIdentical(t, "Deconv2D", run(parityWorkersSerial), run(parityWorkersParallel))
	}
}

func TestDeconv2DBackwardParityAcrossWorkerCounts(t *testing.T) {
	n, c, h, w, oc := 4, 3, 6, 5, 2
	o := ConvOpts{Kernel: 3, Stride: 2, Padding: 1}
	rng := rand.New(rand.NewSource(19))
	x := New(n, c, h, w)
	x.RandN(rng, 1)
	wgt := New(c, oc, o.Kernel, o.Kernel)
	wgt.RandN(rng, 1)
	oh := (h-1)*o.Stride - 2*o.Padding + o.Kernel
	ow := (w-1)*o.Stride - 2*o.Padding + o.Kernel
	gy := New(n, oc, oh, ow)
	gy.RandN(rng, 1)
	type grads struct{ dx, dw, db []float32 }
	run := func(workers int) grads {
		return runAtWorkers(workers, func() grads {
			dw := New(c, oc, o.Kernel, o.Kernel)
			db := New(oc)
			dx := Deconv2DBackward(x, wgt, gy, dw, db, o)
			return grads{dx.Data(), dw.Data(), db.Data()}
		})
	}
	serial, par := run(parityWorkersSerial), run(parityWorkersParallel)
	assertBitIdentical(t, "Deconv2DBackward dx", serial.dx, par.dx)
	assertBitIdentical(t, "Deconv2DBackward dw", serial.dw, par.dw)
	assertBitIdentical(t, "Deconv2DBackward db", serial.db, par.db)
}

func TestMaxPool2DParityAcrossWorkerCounts(t *testing.T) {
	cases := []struct{ n, c, h, w, kernel, stride int }{
		{1, 1, 7, 7, 2, 2},
		{2, 3, 9, 11, 3, 2},
		{5, 7, 8, 8, 2, 2}, // 35 planes, not divisible by 8
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(23))
		x := New(tc.n, tc.c, tc.h, tc.w)
		x.RandN(rng, 1)
		type result struct {
			out []float32
			arg []int32
		}
		run := func(workers int) result {
			return runAtWorkers(workers, func() result {
				out, arg := MaxPool2D(x, tc.kernel, tc.stride)
				return result{out.Data(), arg}
			})
		}
		serial, par := run(parityWorkersSerial), run(parityWorkersParallel)
		assertBitIdentical(t, "MaxPool2D out", serial.out, par.out)
		for i := range serial.arg {
			if serial.arg[i] != par.arg[i] {
				t.Fatalf("MaxPool2D arg %d differs: serial %d parallel %d", i, serial.arg[i], par.arg[i])
			}
		}
	}
}

func TestIm2ColParityAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	x := New(9, 13, 11) // odd channel count vs 8 workers
	x.RandN(rng, 1)
	o := ConvOpts{Kernel: 3, Stride: 2, Padding: 1}
	run := func(workers int) []float32 {
		return runAtWorkers(workers, func() []float32 {
			return Im2Col(x, o).Data()
		})
	}
	assertBitIdentical(t, "Im2Col", run(parityWorkersSerial), run(parityWorkersParallel))
}
