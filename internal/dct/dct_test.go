package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rhsd/internal/tensor"
)

func TestTransformInverseRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 8
		x := make([]float64, n*n)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		back := Inverse2D(Transform2D(x, n), n)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformOrthonormal(t *testing.T) {
	// Parseval: energy is preserved by an orthonormal transform.
	rng := rand.New(rand.NewSource(2))
	const n = 6
	x := make([]float64, n*n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	c := Transform2D(x, n)
	var ex, ec float64
	for i := range x {
		ex += x[i] * x[i]
		ec += c[i] * c[i]
	}
	if math.Abs(ex-ec) > 1e-9 {
		t.Fatalf("energy not preserved: %v vs %v", ex, ec)
	}
}

func TestDCKnownValue(t *testing.T) {
	// Constant block: only the DC coefficient is non-zero and equals
	// n * value for the orthonormal scaling (sqrt(1/n)*n*v per axis).
	const n = 4
	x := make([]float64, n*n)
	for i := range x {
		x[i] = 1
	}
	c := Transform2D(x, n)
	if math.Abs(c[0]-4) > 1e-9 { // sqrt(1/4)*4 = 2 per axis → 2*2 = 4
		t.Fatalf("DC coefficient %v want 4", c[0])
	}
	for i := 1; i < n*n; i++ {
		if math.Abs(c[i]) > 1e-9 {
			t.Fatalf("AC coefficient %d = %v want 0", i, c[i])
		}
	}
}

func TestZigzagOrderIsPermutation(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		z := ZigzagOrder(n)
		if len(z) != n*n {
			t.Fatalf("n=%d: len %d", n, len(z))
		}
		seen := make([]bool, n*n)
		for _, idx := range z {
			if idx < 0 || idx >= n*n || seen[idx] {
				t.Fatalf("n=%d: invalid or duplicate index %d", n, idx)
			}
			seen[idx] = true
		}
	}
}

func TestZigzag4x4Prefix(t *testing.T) {
	// Standard zig-zag: (0,0), (0,1), (1,0), (2,0), (1,1), (0,2), ...
	z := ZigzagOrder(4)
	want := []int{0, 1, 4, 8, 5, 2, 3, 6}
	for i, w := range want {
		if z[i] != w {
			t.Fatalf("zigzag[%d]=%d want %d (full: %v)", i, z[i], w, z[:8])
		}
	}
}

func TestFeatureTensorShape(t *testing.T) {
	img := tensor.New(1, 32, 32)
	ft := FeatureTensor(img, 8, 10)
	if ft.Dim(0) != 10 || ft.Dim(1) != 4 || ft.Dim(2) != 4 {
		t.Fatalf("feature tensor shape %v", ft.Shape())
	}
}

func TestFeatureTensorDCChannelIsBlockDensity(t *testing.T) {
	img := tensor.New(1, 16, 16)
	// Fill one 8×8 block entirely.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			img.Set(1, 0, y, x)
		}
	}
	ft := FeatureTensor(img, 8, 1)
	// DC of the filled block is 8 (sqrt(1/8)*8 per axis = 2.828² = 8);
	// the empty blocks are 0.
	if math.Abs(float64(ft.At(0, 0, 0))-8) > 1e-5 {
		t.Fatalf("filled block DC %v", ft.At(0, 0, 0))
	}
	if ft.At(0, 0, 1) != 0 || ft.At(0, 1, 0) != 0 || ft.At(0, 1, 1) != 0 {
		t.Fatal("empty blocks must have zero DC")
	}
}

func TestFeatureTensorTranslationSensitivity(t *testing.T) {
	// Unlike raw density, the AC coefficients distinguish a left-aligned
	// from a right-aligned stripe in the same block.
	a := tensor.New(1, 8, 8)
	b := tensor.New(1, 8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 4; x++ {
			a.Set(1, 0, y, x)
			b.Set(1, 0, y, x+4)
		}
	}
	fa := FeatureTensor(a, 8, 10)
	fb := FeatureTensor(b, 8, 10)
	if math.Abs(float64(fa.At(0, 0, 0)-fb.At(0, 0, 0))) > 1e-6 {
		t.Fatal("DC should match for equal densities")
	}
	diff := 0.0
	for c := 1; c < 10; c++ {
		diff += math.Abs(float64(fa.At(c, 0, 0) - fb.At(c, 0, 0)))
	}
	if diff < 0.1 {
		t.Fatalf("AC coefficients should differ, total diff %v", diff)
	}
}

func TestFeatureTensorPanicsOnBadArgs(t *testing.T) {
	img := tensor.New(1, 30, 30)
	for _, fn := range []func(){
		func() { FeatureTensor(img, 8, 4) },                    // 30 not divisible by 8
		func() { FeatureTensor(tensor.New(1, 32, 32), 8, 0) },  // keep = 0
		func() { FeatureTensor(tensor.New(1, 32, 32), 8, 65) }, // keep > 64
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
