// Package dct implements the block discrete cosine transform used by the
// TCAD'18 baseline detector [Yang et al., "Layout hotspot detection with
// feature tensor generation and deep biased learning"], which the paper
// compares against in Table 1. That flow divides a layout clip into B×B
// blocks, applies a 2-D DCT-II to each block and keeps the first K
// zig-zag-ordered low-frequency coefficients per block, producing a
// compact "feature tensor" for a small CNN.
package dct

import (
	"fmt"
	"math"

	"rhsd/internal/tensor"
)

// Transform2D computes the orthonormal 2-D DCT-II of a square block.
// Input and output are n×n row-major slices.
func Transform2D(block []float64, n int) []float64 {
	if len(block) != n*n {
		panic(fmt.Sprintf("dct: block length %d != %d²", len(block), n))
	}
	tmp := make([]float64, n*n)
	out := make([]float64, n*n)
	// Rows.
	for y := 0; y < n; y++ {
		dct1D(block[y*n:(y+1)*n], tmp[y*n:(y+1)*n])
	}
	// Columns.
	col := make([]float64, n)
	res := make([]float64, n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			col[y] = tmp[y*n+x]
		}
		dct1D(col, res)
		for y := 0; y < n; y++ {
			out[y*n+x] = res[y]
		}
	}
	return out
}

// Inverse2D computes the inverse (DCT-III) of Transform2D.
func Inverse2D(coef []float64, n int) []float64 {
	if len(coef) != n*n {
		panic(fmt.Sprintf("dct: coef length %d != %d²", len(coef), n))
	}
	tmp := make([]float64, n*n)
	out := make([]float64, n*n)
	col := make([]float64, n)
	res := make([]float64, n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			col[y] = coef[y*n+x]
		}
		idct1D(col, res)
		for y := 0; y < n; y++ {
			tmp[y*n+x] = res[y]
		}
	}
	for y := 0; y < n; y++ {
		idct1D(tmp[y*n:(y+1)*n], out[y*n:(y+1)*n])
	}
	return out
}

// dct1D computes the orthonormal DCT-II: X_k = a_k Σ x_n cos(π(2n+1)k/2N).
func dct1D(x, out []float64) {
	n := len(x)
	for k := 0; k < n; k++ {
		var s float64
		for i := 0; i < n; i++ {
			s += x[i] * math.Cos(math.Pi*float64(2*i+1)*float64(k)/(2*float64(n)))
		}
		out[k] = s * scale(k, n)
	}
}

// idct1D computes the orthonormal DCT-III (inverse of dct1D).
func idct1D(x, out []float64) {
	n := len(x)
	for i := 0; i < n; i++ {
		var s float64
		for k := 0; k < n; k++ {
			s += scale(k, n) * x[k] * math.Cos(math.Pi*float64(2*i+1)*float64(k)/(2*float64(n)))
		}
		out[i] = s
	}
}

func scale(k, n int) float64 {
	if k == 0 {
		return math.Sqrt(1 / float64(n))
	}
	return math.Sqrt(2 / float64(n))
}

// ZigzagOrder returns the standard zig-zag scan indices of an n×n block,
// ordering coefficients roughly by increasing spatial frequency.
func ZigzagOrder(n int) []int {
	order := make([]int, 0, n*n)
	for s := 0; s < 2*n-1; s++ {
		if s%2 == 0 {
			// Walk up-right.
			y := s
			if y > n-1 {
				y = n - 1
			}
			x := s - y
			for y >= 0 && x < n {
				order = append(order, y*n+x)
				y--
				x++
			}
		} else {
			// Walk down-left.
			x := s
			if x > n-1 {
				x = n - 1
			}
			y := s - x
			for x >= 0 && y < n {
				order = append(order, y*n+x)
				y++
				x--
			}
		}
	}
	return order
}

// FeatureTensor converts a binary clip raster [1, H, W] into the TCAD'18
// feature tensor: the image is tiled into block×block blocks, each block
// is DCT-transformed, and the first keep zig-zag coefficients become the
// channel dimension. The result is [keep, H/block, W/block]. H and W must
// be multiples of block.
func FeatureTensor(img *tensor.Tensor, block, keep int) *tensor.Tensor {
	h, w := img.Dim(1), img.Dim(2)
	if h%block != 0 || w%block != 0 {
		panic(fmt.Sprintf("dct: image %dx%d not divisible by block %d", h, w, block))
	}
	if keep <= 0 || keep > block*block {
		panic(fmt.Sprintf("dct: keep %d out of range for block %d", keep, block))
	}
	bh, bw := h/block, w/block
	zig := ZigzagOrder(block)[:keep]
	out := tensor.New(keep, bh, bw)
	buf := make([]float64, block*block)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			for y := 0; y < block; y++ {
				for x := 0; x < block; x++ {
					buf[y*block+x] = float64(img.At(0, by*block+y, bx*block+x))
				}
			}
			coef := Transform2D(buf, block)
			for c, idx := range zig {
				out.Set(float32(coef[idx]), c, by, bx)
			}
		}
	}
	return out
}
