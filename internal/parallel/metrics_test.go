package parallel

import (
	"strings"
	"testing"

	"rhsd/internal/telemetry"
)

// TestPoolMetricsCounting pins the dispatch accounting: serial and
// parallel runs land in their mode-labelled counters, chunk counts are
// exact, and the busy gauge returns to zero once every dispatch drains.
func TestPoolMetricsCounting(t *testing.T) {
	prev := SetWorkers(4)
	defer func() {
		SetWorkers(prev)
		DetachMetrics()
	}()
	reg := telemetry.NewRegistry()
	RegisterMetrics(reg)
	pm := metricsPtr.Load()

	// 16 indices at grain 1 → 16 chunks, parallel dispatch.
	For(16, 1, func(start, end int) {})
	if got := pm.runsParallel.Value(); got != 1 {
		t.Errorf("parallel runs = %d, want 1", got)
	}
	if got := pm.chunks.Value(); got != 16 {
		t.Errorf("chunks = %d, want 16", got)
	}

	// A range that fits one chunk runs serially and counts one chunk.
	For(8, 16, func(start, end int) {})
	if got := pm.runsSerial.Value(); got != 1 {
		t.Errorf("serial runs = %d, want 1", got)
	}
	if got := pm.chunks.Value(); got != 17 {
		t.Errorf("chunks after serial run = %d, want 17", got)
	}

	// ForIndexed feeds the same instruments.
	ForIndexed(16, 1, func(slot, start, end int) {})
	if got := pm.runsParallel.Value(); got != 2 {
		t.Errorf("parallel runs after ForIndexed = %d, want 2", got)
	}
	if got := pm.busy.Value(); got != 0 {
		t.Errorf("busy workers = %d after all dispatches drained", got)
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rhsd_pool_workers 4",
		`rhsd_pool_runs_total{mode="serial"} 1`,
		`rhsd_pool_runs_total{mode="parallel"} 2`,
		"rhsd_pool_busy_workers 0",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestDetachMetrics checks detached dispatches stop recording.
func TestDetachMetrics(t *testing.T) {
	prev := SetWorkers(4)
	defer func() {
		SetWorkers(prev)
		DetachMetrics()
	}()
	reg := telemetry.NewRegistry()
	RegisterMetrics(reg)
	pm := metricsPtr.Load()
	DetachMetrics()
	For(16, 1, func(start, end int) {})
	if got := pm.runsParallel.Value() + pm.runsSerial.Value(); got != 0 {
		t.Errorf("detached pool recorded %d runs", got)
	}
}
