// Package parallel is the repo-wide worker-pool primitive behind every
// parallelised compute kernel (tensor GEMM/conv, region-parallel
// detection). It exposes one scheduling verb, For, which splits an index
// range into contiguous chunks and runs them on up to Workers()
// goroutines.
//
// Determinism contract: For only decides *which goroutine* runs a chunk,
// never the chunk boundaries or the per-index work. Kernels built on it
// must write each output element from exactly one chunk with a fixed
// accumulation order, so results are bit-identical for every worker
// count. The parity tests in internal/tensor and internal/hsd enforce
// this for all shipped kernels.
//
// The worker count defaults to runtime.NumCPU, can be set at process
// start via the RHSD_WORKERS environment variable, and can be overridden
// programmatically with SetWorkers (used by the -workers flags on the
// command-line tools and by the parity tests).
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// workerCount holds the active worker count; 0 means "not yet resolved"
// and resolves lazily to the environment/NumCPU default.
var workerCount int32

// maxEnvWorkers caps RHSD_WORKERS: beyond ~1k goroutines per kernel the
// scheduler overhead dwarfs any conceivable speedup, and a fat-fingered
// value (e.g. a memory size pasted into the wrong variable) should not
// spawn millions of goroutines.
const maxEnvWorkers = 1024

// envWarnOnce gates the misconfiguration warning so a daemon calling
// Workers on every request logs the problem exactly once.
var envWarnOnce sync.Once

func envWarnf(format string, args ...any) {
	envWarnOnce.Do(func() {
		fmt.Fprintf(os.Stderr, "parallel: "+format+"\n", args...)
	})
}

// defaultWorkers resolves the worker count from RHSD_WORKERS, validating
// rather than silently ignoring bad values: non-numeric or non-positive
// settings fall back to NumCPU and oversized ones clamp to maxEnvWorkers,
// each with a once-per-process warning on stderr — a misconfigured
// deployment should not quietly run serial.
func defaultWorkers() int {
	s := os.Getenv("RHSD_WORKERS")
	if s == "" {
		return runtime.NumCPU()
	}
	n, err := strconv.Atoi(s)
	switch {
	case err != nil:
		envWarnf("RHSD_WORKERS=%q is not an integer; using NumCPU=%d", s, runtime.NumCPU())
		return runtime.NumCPU()
	case n < 1:
		envWarnf("RHSD_WORKERS=%d is not positive; using NumCPU=%d", n, runtime.NumCPU())
		return runtime.NumCPU()
	case n > maxEnvWorkers:
		envWarnf("RHSD_WORKERS=%d exceeds the cap; clamping to %d", n, maxEnvWorkers)
		return maxEnvWorkers
	}
	return n
}

// Workers returns the number of goroutines For may use concurrently.
func Workers() int {
	if w := atomic.LoadInt32(&workerCount); w > 0 {
		return int(w)
	}
	w := int32(defaultWorkers())
	atomic.CompareAndSwapInt32(&workerCount, 0, w)
	return int(atomic.LoadInt32(&workerCount))
}

// SetWorkers overrides the worker count. Values below 1 reset to the
// default (RHSD_WORKERS or NumCPU). It returns the previous count so
// callers can restore it.
func SetWorkers(n int) (prev int) {
	prev = Workers()
	if n < 1 {
		n = defaultWorkers()
	}
	atomic.StoreInt32(&workerCount, int32(n))
	return prev
}

// For invokes fn over the range [0, n) split into contiguous chunks of at
// most grain indices: fn(start, end) with 0 ≤ start < end ≤ n. Chunks are
// claimed from a shared counter by up to Workers() goroutines (the caller
// doubles as one of them); when the range fits in a single chunk or only
// one worker is configured, fn runs serially on the calling goroutine
// with no synchronisation at all.
//
// fn must be safe to call concurrently for disjoint chunks; For returns
// only after every chunk has completed.
func For(n, grain int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	w := Workers()
	if w > chunks {
		w = chunks
	}
	if w <= 1 {
		noteSerial()
		fn(0, n)
		return
	}
	pm := noteParallelStart(w, chunks)
	var next int32
	run := func() {
		for {
			c := int(atomic.AddInt32(&next, 1)) - 1
			if c >= chunks {
				return
			}
			start := c * grain
			end := start + grain
			if end > n {
				end = n
			}
			fn(start, end)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 1; i < w; i++ {
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
	noteParallelEnd(pm, w)
}

// Slots returns the number of worker slots ForIndexed will use for a
// range of n indices at the given grain: min(Workers(), chunk count),
// at least 1. Callers that hand each worker a private scratch buffer
// (e.g. the packed-GEMM B panels) size the buffer array with Slots
// before invoking ForIndexed.
func Slots(n, grain int) int {
	if n <= 0 {
		return 1
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	w := Workers()
	if w > chunks {
		w = chunks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForIndexed is For with worker-slot identity: fn additionally receives
// a slot id in [0, Slots(n, grain)) that is stable for the lifetime of
// one goroutine. Chunks are still claimed dynamically, so the slot→chunk
// mapping is not deterministic — slots exist only so each concurrent
// worker can own private scratch (a workspace) without locking. Kernels
// must not let slot identity influence results; the determinism contract
// of For applies unchanged.
//
// The worker count must not change between a Slots call and the
// ForIndexed call it sizes (SetWorkers is a test/startup-time knob, not
// a mid-kernel one).
func ForIndexed(n, grain int, fn func(slot, start, end int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	w := Workers()
	if w > chunks {
		w = chunks
	}
	if w <= 1 {
		noteSerial()
		fn(0, 0, n)
		return
	}
	pm := noteParallelStart(w, chunks)
	var next int32
	run := func(slot int) {
		for {
			c := int(atomic.AddInt32(&next, 1)) - 1
			if c >= chunks {
				return
			}
			start := c * grain
			end := start + grain
			if end > n {
				end = n
			}
			fn(slot, start, end)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 1; i < w; i++ {
		go func(slot int) {
			defer wg.Done()
			run(slot)
		}(i)
	}
	run(0)
	wg.Wait()
	noteParallelEnd(pm, w)
}

// GrainFor sizes a chunk so each one carries at least minWork units when
// every index costs perItem units: kernels use it to keep goroutine
// overhead negligible on small problems (For falls back to serial when
// the whole range fits in one chunk).
func GrainFor(perItem, minWork int) int {
	if perItem <= 0 {
		perItem = 1
	}
	g := (minWork + perItem - 1) / perItem
	if g < 1 {
		g = 1
	}
	return g
}
