package parallel

import (
	"sync/atomic"

	"rhsd/internal/telemetry"
)

// poolMetrics is the instrument bundle For/ForIndexed feed once a
// registry has been attached. All fields are preallocated at
// registration, so the per-dispatch cost is a handful of atomic adds —
// and a single atomic pointer load when no registry is attached.
type poolMetrics struct {
	busy         *telemetry.Gauge
	runsSerial   *telemetry.Counter
	runsParallel *telemetry.Counter
	chunks       *telemetry.Counter
}

// metricsPtr holds the active bundle; nil until RegisterMetrics runs.
var metricsPtr atomic.Pointer[poolMetrics]

// RegisterMetrics attaches pool utilization metrics to reg:
//
//	rhsd_pool_workers       gauge    configured worker count
//	rhsd_pool_busy_workers  gauge    goroutines currently running chunks
//	rhsd_pool_runs_total    counter  range dispatches, by mode=serial|parallel
//	rhsd_pool_chunks_total  counter  chunks claimed across all dispatches
//
// The pool is process-global, so its metrics are too: the most recently
// registered registry receives all subsequent observations. Call once at
// daemon/CLI startup; registering the same registry twice panics on the
// duplicate series (per the telemetry registration contract).
func RegisterMetrics(reg *telemetry.Registry) {
	reg.NewGaugeFunc("rhsd_pool_workers",
		"Configured worker-pool size (goroutines a kernel dispatch may use).", "",
		func() int64 { return int64(Workers()) })
	pm := &poolMetrics{
		busy: reg.NewGauge("rhsd_pool_busy_workers",
			"Worker goroutines currently executing kernel chunks.", ""),
		runsSerial: reg.NewCounter("rhsd_pool_runs_total",
			"Kernel range dispatches, by execution mode.", `mode="serial"`),
		runsParallel: reg.NewCounter("rhsd_pool_runs_total",
			"Kernel range dispatches, by execution mode.", `mode="parallel"`),
		chunks: reg.NewCounter("rhsd_pool_chunks_total",
			"Chunks claimed across all kernel range dispatches.", ""),
	}
	metricsPtr.Store(pm)
}

// DetachMetrics clears the active bundle so dispatches stop recording.
// Benchmark harnesses use it to measure the telemetry-off baseline and
// the instrumented path in one process (rhsd-bench -exp obs).
func DetachMetrics() { metricsPtr.Store(nil) }

// noteSerial records a dispatch that ran inline on the caller.
func noteSerial() {
	if pm := metricsPtr.Load(); pm != nil {
		pm.runsSerial.Inc()
		pm.chunks.Inc()
	}
}

// noteParallelStart records a dispatch fanning out to w goroutines over
// the given chunk count and marks them busy; the caller must pair it
// with noteParallelEnd(pm, w) after the dispatch completes. Returns nil
// when no registry is attached.
func noteParallelStart(w, chunks int) *poolMetrics {
	pm := metricsPtr.Load()
	if pm == nil {
		return nil
	}
	pm.runsParallel.Inc()
	pm.chunks.Add(int64(chunks))
	pm.busy.Add(int64(w))
	return pm
}

func noteParallelEnd(pm *poolMetrics, w int) {
	if pm != nil {
		pm.busy.Add(int64(-w))
	}
}
