package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// withWorkers runs f under a fixed worker count, restoring the previous
// count afterwards.
func withWorkers(n int, f func()) {
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	f()
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, grain := range []int{1, 3, 64, 1000} {
				hits := make([]int32, n)
				withWorkers(workers, func() {
					For(n, grain, func(start, end int) {
						if start < 0 || end > n || start >= end {
							t.Errorf("workers=%d n=%d grain=%d: bad chunk [%d,%d)", workers, n, grain, start, end)
						}
						for i := start; i < end; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestForChunkBoundariesIndependentOfWorkers(t *testing.T) {
	// For any worker count ≥ 2 the chunk partition must depend only on
	// (n, grain), never on how many goroutines claim chunks — that, plus
	// per-element determinism inside kernels, is what lets them promise
	// bit-identical results for any RHSD_WORKERS. (With 1 worker For
	// collapses to a single [0,n) chunk, which the kernels treat
	// identically element-wise.)
	collect := func(workers, n, grain int) map[[2]int]bool {
		set := make(map[[2]int]bool)
		var mu int32
		withWorkers(workers, func() {
			For(n, grain, func(start, end int) {
				for !atomic.CompareAndSwapInt32(&mu, 0, 1) {
				}
				set[[2]int{start, end}] = true
				atomic.StoreInt32(&mu, 0)
			})
		})
		return set
	}
	for _, n := range []int{1, 10, 97} {
		for _, grain := range []int{1, 4, 50} {
			// Analytic partition: ceil(n/grain) chunks of grain indices,
			// last one truncated.
			ref := make(map[[2]int]bool)
			for start := 0; start < n; start += grain {
				end := start + grain
				if end > n {
					end = n
				}
				ref[[2]int{start, end}] = true
			}
			for _, workers := range []int{2, 5, 16} {
				got := collect(workers, n, grain)
				if len(got) != len(ref) {
					t.Fatalf("n=%d grain=%d workers=%d: %d chunks, want %d", n, grain, workers, len(got), len(ref))
				}
				for c := range ref {
					if !got[c] {
						t.Fatalf("n=%d grain=%d workers=%d: chunk %v missing", n, grain, workers, c)
					}
				}
			}
			serial := collect(1, n, grain)
			if len(serial) != 1 || !serial[[2]int{0, n}] {
				t.Fatalf("n=%d grain=%d: serial fallback chunks %v, want single [0,%d)", n, grain, serial, n)
			}
		}
	}
}

func TestForSerialFallbackRunsOnCaller(t *testing.T) {
	withWorkers(4, func() {
		calls := 0
		For(5, 10, func(start, end int) { // single chunk → serial
			calls++
			if start != 0 || end != 5 {
				t.Fatalf("expected one chunk [0,5), got [%d,%d)", start, end)
			}
		})
		if calls != 1 {
			t.Fatalf("expected exactly one call, got %d", calls)
		}
	})
}

func TestForNested(t *testing.T) {
	withWorkers(4, func() {
		var total int64
		For(8, 1, func(i0, i1 int) {
			for i := i0; i < i1; i++ {
				For(16, 2, func(j0, j1 int) {
					atomic.AddInt64(&total, int64(j1-j0))
				})
			}
		})
		if total != 8*16 {
			t.Fatalf("nested For covered %d inner indices, want %d", total, 8*16)
		}
	})
}

func TestSetWorkersAndRestore(t *testing.T) {
	prev := SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	if p := SetWorkers(0); p != 3 { // 0 resets to default
		t.Fatalf("SetWorkers returned prev %d, want 3", p)
	}
	if Workers() < 1 {
		t.Fatalf("default worker count %d < 1", Workers())
	}
	SetWorkers(prev)
}

func TestGrainFor(t *testing.T) {
	cases := []struct{ perItem, minWork, want int }{
		{1, 0, 1},
		{0, 100, 100},  // perItem clamps to 1
		{10, 100, 10},  // exact division
		{30, 100, 4},   // rounds up
		{1000, 100, 1}, // heavy items → chunk of one
	}
	for _, c := range cases {
		if got := GrainFor(c.perItem, c.minWork); got != c.want {
			t.Errorf("GrainFor(%d, %d) = %d, want %d", c.perItem, c.minWork, got, c.want)
		}
	}
}

func TestEnvWorkersValidation(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	cpu := runtime.NumCPU()
	cases := []struct {
		env  string
		want int
	}{
		{"7", 7},
		{"abc", cpu},     // non-numeric → NumCPU
		{"-3", cpu},      // negative → NumCPU
		{"0", cpu},       // zero → NumCPU
		{"1e6", cpu},     // not an Atoi integer → NumCPU
		{"999999", maxEnvWorkers}, // oversized → clamp
		{"", cpu},
	}
	for _, c := range cases {
		t.Setenv("RHSD_WORKERS", c.env)
		SetWorkers(0) // re-resolve the default from the environment
		if got := Workers(); got != c.want {
			t.Errorf("RHSD_WORKERS=%q: Workers() = %d, want %d", c.env, got, c.want)
		}
	}
}
