module rhsd

go 1.22
