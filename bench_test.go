// Benchmark harness: one benchmark per evaluation artifact of the paper.
//
//	go test -bench=Table1 -benchmem     # Table 1 rows (all four detectors)
//	go test -bench=Figure -benchmem     # Figures 5, 9, 10
//	go test -bench=Micro -benchmem      # substrate micro-benchmarks
//
// Heavy state (benchmark data, trained detectors) is built once on first
// use and shared across benchmarks; the timed loops measure the detection
// paths the paper's Time columns report. Accuracy and false-alarm counts
// are attached to each benchmark via ReportMetric (units acc% and FA),
// and the assembled Table 1 / Figure 10 text is printed once so a bench
// run regenerates the artifacts directly.
package rhsd

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"rhsd/internal/baseline/fasterrcnn"
	"rhsd/internal/baseline/ssd"
	"rhsd/internal/baseline/tcad"
	"rhsd/internal/dataset"
	"rhsd/internal/dct"
	"rhsd/internal/eval"
	"rhsd/internal/geom"
	"rhsd/internal/hsd"
	"rhsd/internal/litho"
	"rhsd/internal/metrics"
	"rhsd/internal/parallel"
	"rhsd/internal/tensor"
	"rhsd/internal/viz"
)

// TestParallelDetectSpeedupGuard fails when the parallel compute engine
// stops pulling its weight: full-region detection with a NumCPU-sized
// worker pool must be at least 1.5× faster than the serial path on
// machines with 4+ cores. A future PR that accidentally serialises the
// hot path (a lock in Gemm, a dropped parallel.For) trips this before it
// lands. Skipped on small machines, where the floor is not meaningful.
func TestParallelDetectSpeedupGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("speed measurement skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need ≥4 CPUs for a meaningful speedup floor, have %d", runtime.NumCPU())
	}
	c := hsd.TinyConfig()
	c.InputSize = 128 // big enough that goroutine overhead is noise
	m, err := hsd.NewModel(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	x := tensor.New(1, hsd.InputChannels, c.InputSize, c.InputSize)
	x.RandUniform(rng, 0, 1)
	m.Detect(x) // warm up allocator and caches before timing

	bestOf := func(iters int, f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < iters; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	prev := parallel.SetWorkers(1)
	serial := bestOf(3, func() { m.Detect(x) })
	parallel.SetWorkers(runtime.NumCPU())
	par := bestOf(3, func() { m.Detect(x) })
	parallel.SetWorkers(prev)

	speedup := float64(serial) / float64(par)
	t.Logf("serial %v, parallel %v (%d workers): speedup %.2fx", serial, par, runtime.NumCPU(), speedup)
	if speedup < 1.5 {
		t.Fatalf("parallel Detect speedup %.2fx < 1.5x floor (serial %v, parallel %v on %d CPUs) — hot path may have been serialised",
			speedup, serial, par, runtime.NumCPU())
	}
}

// benchProfile shrinks the fast profile so the one-time training setup
// stays within a few minutes of CPU time for the whole bench run.
func benchProfile() eval.Profile {
	p := eval.FastProfile()
	p.NTrain, p.NTest = 8, 6
	p.HSD.TrainSteps = benchOursSteps
	p.TCAD.TrainSteps = 400
	p.FRCNN.TrainSteps = 500
	p.SSD.TrainSteps = 500
	return p
}

const (
	benchOursSteps     = 1200
	benchAblationSteps = 500
)

// table1State lazily trains all four detectors and caches their outcomes.
var table1State struct {
	once  sync.Once
	p     eval.Profile
	data  *eval.Data
	tcad  *tcad.Detector
	frcnn *fasterrcnn.Detector
	ssd   *ssd.Detector
	ours  *hsd.Model
	table *metrics.Table
	err   error
}

func table1Setup(b *testing.B) {
	table1State.once.Do(func() {
		p := benchProfile()
		table1State.p = p
		fmt.Fprintln(os.Stderr, "[bench] generating benchmark cases...")
		data := eval.LoadData(p)
		table1State.data = data
		clipNM := p.HSD.ClipNM()

		fmt.Fprintln(os.Stderr, "[bench] training TCAD'18...")
		table1State.tcad = tcad.New(p.TCAD)
		table1State.tcad.Train(data.MergedTrain)
		fmt.Fprintln(os.Stderr, "[bench] training Faster R-CNN...")
		table1State.frcnn = fasterrcnn.New(p.FRCNN)
		table1State.frcnn.Train(data.MergedTrain, clipNM)
		fmt.Fprintln(os.Stderr, "[bench] training SSD...")
		table1State.ssd = ssd.New(p.SSD)
		table1State.ssd.Train(data.MergedTrain, clipNM)
		fmt.Fprintf(os.Stderr, "[bench] training Ours (%d steps)...\n", p.HSD.TrainSteps)
		table1State.ours, table1State.err = eval.TrainOurs(p.HSD, data.MergedTrain, nil)
		if table1State.err != nil {
			return
		}

		tbl := &metrics.Table{Detectors: []string{eval.DetTCAD, eval.DetFRCNN, eval.DetSSD, eval.DetOurs}}
		for _, ds := range data.Cases {
			tbl.AddRow(ds.Name, eval.DetTCAD, table1State.tcad.Evaluate(ds.Test))
			tbl.AddRow(ds.Name, eval.DetFRCNN, table1State.frcnn.Evaluate(ds.Test, clipNM))
			tbl.AddRow(ds.Name, eval.DetSSD, table1State.ssd.Evaluate(ds.Test, clipNM))
			tbl.AddRow(ds.Name, eval.DetOurs, eval.EvalOurs(table1State.ours, ds.Test))
		}
		table1State.table = tbl
		fmt.Fprintln(os.Stderr, "\nTable 1 — comparison with state-of-the-art (bench profile)")
		fmt.Fprintln(os.Stderr, tbl.Render(eval.DetTCAD))
	})
	if table1State.err != nil {
		b.Fatal(table1State.err)
	}
}

// reportRow attaches a detector's cached accuracy/FA to the benchmark.
func reportRow(b *testing.B, det string) {
	var acc, fa float64
	n := 0
	for _, r := range table1State.table.Rows {
		if r.Detector == det {
			acc += r.Outcome.Accuracy() * 100
			fa += float64(r.Outcome.FalseAlarms)
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(acc/float64(n), "acc%")
		b.ReportMetric(fa/float64(n), "FA/case")
	}
}

// BenchmarkTable1OursDetect measures the paper's Time column for the
// region-based detector: one full-region detection pass.
func BenchmarkTable1OursDetect(b *testing.B) {
	table1Setup(b)
	r := table1State.data.Cases[0].Test[0]
	sample := hsd.MakeSample(r.Layout, nil, table1State.ours.Config)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table1State.ours.Detect(sample.Raster)
	}
	b.StopTimer()
	reportRow(b, eval.DetOurs)
}

// BenchmarkTable1TCADDetect measures the conventional sliding-window scan
// over the same region.
func BenchmarkTable1TCADDetect(b *testing.B) {
	table1Setup(b)
	r := table1State.data.Cases[0].Test[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table1State.tcad.DetectRegion(r)
	}
	b.StopTimer()
	reportRow(b, eval.DetTCAD)
}

// BenchmarkTable1FasterRCNNDetect measures the generic two-stage baseline.
func BenchmarkTable1FasterRCNNDetect(b *testing.B) {
	table1Setup(b)
	r := table1State.data.Cases[0].Test[0]
	clipNM := table1State.p.HSD.ClipNM()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table1State.frcnn.DetectRegion(r, clipNM)
	}
	b.StopTimer()
	reportRow(b, eval.DetFRCNN)
}

// BenchmarkTable1SSDDetect measures the generic one-stage baseline.
func BenchmarkTable1SSDDetect(b *testing.B) {
	table1Setup(b)
	r := table1State.data.Cases[0].Test[0]
	clipNM := table1State.p.HSD.ClipNM()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table1State.ssd.DetectRegion(r, clipNM)
	}
	b.StopTimer()
	reportRow(b, eval.DetSSD)
}

// figure10State lazily trains the four ablation variants.
var figure10State struct {
	once     sync.Once
	variants []eval.AblationVariant
	models   map[string]*hsd.Model
	sample   *tensor.Tensor
	err      error
}

func figure10Setup(b *testing.B) {
	table1Setup(b) // reuse the generated data
	figure10State.once.Do(func() {
		p := table1State.p
		p.HSD.TrainSteps = benchAblationSteps
		figure10State.models = map[string]*hsd.Model{}
		variants := eval.AblationVariants(p.HSD)
		for vi := range variants {
			v := &variants[vi]
			fmt.Fprintf(os.Stderr, "[bench] training ablation variant %q (%d steps)...\n",
				v.Name, v.Config.TrainSteps)
			m, err := eval.TrainOurs(v.Config, table1State.data.MergedTrain, nil)
			if err != nil {
				figure10State.err = err
				return
			}
			figure10State.models[v.Name] = m
			var accSum, faSum float64
			for _, ds := range table1State.data.Cases {
				o := eval.EvalOurs(m, ds.Test)
				accSum += o.Accuracy() * 100
				faSum += float64(o.FalseAlarms)
			}
			v.Accuracy = accSum / float64(len(table1State.data.Cases))
			v.FA = faSum / float64(len(table1State.data.Cases))
		}
		figure10State.variants = variants
		r := table1State.data.Cases[0].Test[0]
		figure10State.sample = hsd.MakeSample(r.Layout, nil, p.HSD).Raster
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, eval.RenderFigure10(variants))
	})
	if figure10State.err != nil {
		b.Fatal(figure10State.err)
	}
}

func benchAblationVariant(b *testing.B, name string) {
	figure10Setup(b)
	m := figure10State.models[name]
	if m == nil {
		b.Fatalf("variant %q missing", name)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Detect(figure10State.sample)
	}
	b.StopTimer()
	for _, v := range figure10State.variants {
		if v.Name == name {
			b.ReportMetric(v.Accuracy, "acc%")
			b.ReportMetric(v.FA, "FA/case")
		}
	}
}

// BenchmarkFigure10 covers the four ablation bars of Figure 10.
func BenchmarkFigure10Full(b *testing.B)     { benchAblationVariant(b, "Full") }
func BenchmarkFigure10NoED(b *testing.B)     { benchAblationVariant(b, "w/o. ED") }
func BenchmarkFigure10NoL2(b *testing.B)     { benchAblationVariant(b, "w/o. L2") }
func BenchmarkFigure10NoRefine(b *testing.B) { benchAblationVariant(b, "w/o. Refine") }

// BenchmarkFigure9Render measures the qualitative detection-map renderer
// on a real trained model's output.
func BenchmarkFigure9Render(b *testing.B) {
	table1Setup(b)
	r := table1State.data.Cases[0].Test[0]
	sample := hsd.MakeSample(r.Layout, nil, table1State.ours.Config)
	dets := table1State.ours.DetectionsNM(table1State.ours.Detect(sample.Raster))
	md := make([]metrics.Detection, len(dets))
	for i, d := range dets {
		md[i] = metrics.Detection{Clip: d.Clip, Score: d.Score}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		viz.RenderRegion(r.Layout, r.HotspotPoints(), md, 512)
	}
}

// BenchmarkFigure5 compares h-NMS and conventional NMS on a proposal set
// of realistic size (Figure 5 / Algorithm 1).
func BenchmarkFigure5HNMS(b *testing.B) {
	clips := nmsWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hsd.HNMS(clips, 0.7)
	}
}

func BenchmarkFigure5ConventionalNMS(b *testing.B) {
	clips := nmsWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hsd.ConventionalNMS(clips, 0.7)
	}
}

func nmsWorkload() []hsd.ScoredClip {
	rng := rand.New(rand.NewSource(1))
	clips := make([]hsd.ScoredClip, 256)
	for i := range clips {
		clips[i] = hsd.ScoredClip{
			Clip:  geom.RectCWH(rng.Float64()*96, rng.Float64()*96, 10+rng.Float64()*30, 10+rng.Float64()*30),
			Score: rng.Float64(),
		}
	}
	return clips
}

// --- substrate micro-benchmarks -----------------------------------------

func BenchmarkMicroConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(1, 16, 48, 48)
	w := tensor.New(16, 16, 3, 3)
	bias := tensor.New(16)
	x.RandN(rng, 1)
	w.RandN(rng, 1)
	o := tensor.ConvOpts{Kernel: 3, Stride: 1, Padding: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2D(x, w, bias, o)
	}
}

func BenchmarkMicroLithoSimulate(b *testing.B) {
	spec := dataset.CaseSpecs(768)[0]
	ds := dataset.Generate(spec, litho.DefaultModel(), 1, 0)
	l := ds.Train[0].Layout
	m := litho.DefaultModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Simulate(l, l.Bounds)
	}
}

func BenchmarkMicroRasterize(b *testing.B) {
	spec := dataset.CaseSpecs(768)[0]
	ds := dataset.Generate(spec, litho.DefaultModel(), 1, 0)
	l := ds.Train[0].Layout
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Rasterize(l.Bounds, 8)
	}
}

func BenchmarkMicroDCTFeatureTensor(b *testing.B) {
	img := tensor.New(1, 48, 48)
	for i := range img.Data() {
		if i%3 == 0 {
			img.Data()[i] = 1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dct.FeatureTensor(img, 8, 16)
	}
}

func BenchmarkMicroRoIPool(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	feat := tensor.New(1, 32, 12, 12)
	feat.RandN(rng, 1)
	pool := hsd.NewRoIPool(7, 8)
	rois := make([]geom.Rect, 16)
	for i := range rois {
		rois[i] = geom.RectCWH(20+rng.Float64()*50, 20+rng.Float64()*50, 24, 24)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Forward(feat, rois)
	}
}

func BenchmarkMicroAnchorAssign(b *testing.B) {
	c := hsd.TinyConfig()
	c.InputSize = 96
	c.PitchNM = 8
	c.ClipPx = 24
	anchors := hsd.GenerateAnchors(c)
	rng := rand.New(rand.NewSource(3))
	gt := make([]geom.Rect, 6)
	for i := range gt {
		gt[i] = geom.RectCWH(20+rng.Float64()*56, 20+rng.Float64()*56, 24, 24)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hsd.AssignTargets(anchors, gt, c)
	}
}

func BenchmarkMicroTrainStep(b *testing.B) {
	c := hsd.TinyConfig()
	m, err := hsd.NewModel(c)
	if err != nil {
		b.Fatal(err)
	}
	tr := hsd.NewTrainer(m)
	rng := rand.New(rand.NewSource(4))
	img := tensor.New(1, hsd.InputChannels, c.InputSize, c.InputSize)
	img.RandUniform(rng, 0, 1)
	s := hsd.Sample{Raster: img, GT: []geom.Rect{geom.RectCWH(32, 32, c.ClipPx, c.ClipPx)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(s)
	}
}
