// Quickstart: the smallest end-to-end use of the R-HSD public API.
//
//  1. Synthesize a benchmark case (layout regions labelled by the litho
//     proxy).
//  2. Train a small region-based detector on the training half.
//  3. Detect all hotspots in a test region with one forward pass and
//     compare against ground truth.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rhsd/internal/dataset"
	"rhsd/internal/hsd"
	"rhsd/internal/litho"
	"rhsd/internal/metrics"
)

func main() {
	// A shrunk configuration that trains in about a minute on one core.
	cfg := hsd.TinyConfig()
	cfg.InputSize = 96
	cfg.PitchNM = 8
	cfg.ClipPx = 24
	cfg.TrainSteps = 500

	// 1. Data: one synthetic case, split into train/test halves.
	spec := dataset.CaseSpecs(cfg.RegionNM())[0]
	data := dataset.Generate(spec, litho.DefaultModel(), 8, 4)
	fmt.Printf("generated %s: train %v, test %v\n",
		data.Name, dataset.ComputeStats(data.Train), dataset.ComputeStats(data.Test))

	// 2. Train.
	model, err := hsd.NewModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	trainer := hsd.NewTrainer(model)
	samples := make([]hsd.Sample, len(data.Train))
	for i, r := range data.Train {
		samples[i] = hsd.MakeSample(r.Layout, r.HotspotPoints(), cfg)
	}
	fmt.Printf("training for %d steps...\n", cfg.TrainSteps)
	trainer.Run(samples, func(step int, st hsd.StepStats) {
		if step%100 == 0 {
			fmt.Printf("  step %4d  loss %.3f\n", step, st.Total())
		}
	})

	// 3. Detect: one forward pass marks every hotspot in the region.
	var total metrics.Outcome
	for _, r := range data.Test {
		sample := hsd.MakeSample(r.Layout, nil, cfg)
		dets := model.DetectionsNM(model.Detect(sample.Raster))
		md := make([]metrics.Detection, len(dets))
		for i, d := range dets {
			md[i] = metrics.Detection{Clip: d.Clip, Score: d.Score}
		}
		o := metrics.Evaluate(md, r.HotspotPoints())
		total.Add(o)
		fmt.Printf("region with %d hotspots: %d detected, %d false alarms\n",
			o.GroundTruth, o.Detected, o.FalseAlarms)
	}
	fmt.Printf("\noverall: accuracy %.1f%%, %d false alarms over %d regions\n",
		total.Accuracy()*100, total.FalseAlarms, len(data.Test))
}
