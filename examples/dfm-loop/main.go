// DFM loop: detect hotspots, correct them, verify the fix.
//
// The paper motivates hotspot detection as a step inside the design-for-
// manufacturability loop. This example closes that loop on the synthetic
// substrate: a briefly-trained R-HSD model flags hotspot clips in a test
// region, rule-based OPC (internal/opc) biases the geometry inside the
// flagged clips, and the litho proxy re-verifies the corrected region.
//
// Run with: go run ./examples/dfm-loop
package main

import (
	"fmt"
	"log"

	"rhsd/internal/dataset"
	"rhsd/internal/eval"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
	"rhsd/internal/opc"
)

func main() {
	p := eval.FastProfile()
	p.HSD.TrainSteps = 400 // brief: this demo shows the loop, not peak accuracy

	spec := dataset.CaseSpecs(p.RegionNM)[0]
	data := dataset.Generate(spec, p.Litho, 8, 3)

	fmt.Println("training the detector briefly...")
	model, err := eval.TrainOurs(p.HSD, data.Train, nil)
	if err != nil {
		log.Fatal(err)
	}
	// Identical megatile content (repeated cells, re-verified regions)
	// is served from this cache instead of re-running the forward pass.
	model.SetScanCache(hsd.NewDetCache(32 << 20))

	var fixedFirst *layout.Layout
	for i, r := range data.Test {
		before := len(r.Hotspots)
		sample := hsd.MakeSample(r.Layout, nil, p.HSD)
		dets := model.DetectionsNM(model.Detect(sample.Raster))

		// Correct only the geometry inside detected clips: OPC is
		// expensive at full-chip scale, so the detector's job is to focus
		// it (the paper's DFM-flow argument).
		flagged := layout.New(r.Layout.Bounds)
		untouched := layout.New(r.Layout.Bounds)
		for _, rc := range r.Layout.Rects {
			inDet := false
			for _, d := range dets {
				if rc.Overlaps(layout.R(int(d.Clip.X0), int(d.Clip.Y0), int(d.Clip.X1), int(d.Clip.Y1))) {
					inDet = true
					break
				}
			}
			if inDet {
				flagged.Add(rc)
			} else {
				untouched.Add(rc)
			}
		}
		res := opc.Correct(flagged, p.Litho, opc.DefaultConfig())

		merged := layout.New(r.Layout.Bounds)
		for _, rc := range untouched.Rects {
			merged.Add(rc)
		}
		for _, rc := range res.Corrected.Rects {
			merged.Add(rc)
		}
		after := len(p.Litho.Simulate(merged, merged.Bounds))
		if i == 0 {
			fixedFirst = merged
		}

		fmt.Printf("region %d: %2d hotspots, %2d detections → OPC moved %3d edges → %2d hotspots remain\n",
			i, before, len(dets), res.MovedEdges, after)
	}
	fmt.Println("\n(residual hotspots are detector misses or geometry OPC cannot fix within mask rules)")

	// Re-verifying a whole chip after one local fix should not cost a
	// whole-chip scan. rhsd-serve does this over HTTP (/detect?since=);
	// this is the in-process version: scan once, apply the region-0 fix,
	// diff the two layouts, and rescan — only megatiles a dirty rect
	// touches are re-rasterized, the rest are reused, and cached,
	// incremental and cold scans are bit-identical.
	chipBefore := stitch(data.Test, nil, p.RegionNM)
	chipAfter := stitch(data.Test, fixedFirst, p.RegionNM)
	scan := model.ScanLayoutMegatile(chipBefore, chipBefore.Bounds, 1)
	rescan := model.RescanLayoutMegatile(scan, chipAfter, layout.Diff(chipBefore, chipAfter))
	fmt.Printf("\nchip scan: %d detections over %d megatiles\n", len(scan.Detections), scan.TilesScanned)
	fmt.Printf("after the region-0 fix: %d rescanned, %d reused → %d detections\n",
		rescan.TilesScanned, rescan.TilesReused, len(rescan.Detections))

	// A full sign-off re-check of the fixed chip rasterizes everything
	// again, but every megatile's content is now cached: no forward pass.
	model.DetectLayoutMegatile(chipAfter, chipAfter.Bounds, 1)
	stats := model.ScanCache().Stats()
	fmt.Printf("sign-off re-check: result cache served %d of %d lookups without a forward pass\n",
		stats.Hits, stats.Hits+stats.Misses)
}

// stitch lays the test regions side by side as one chip, optionally
// substituting the corrected geometry for region 0.
func stitch(regions []*dataset.Region, replaceFirst *layout.Layout, regionNM int) *layout.Layout {
	chip := layout.New(layout.R(0, 0, len(regions)*regionNM, regionNM))
	for i, r := range regions {
		src := r.Layout
		if i == 0 && replaceFirst != nil {
			src = replaceFirst
		}
		for _, rc := range src.Rects {
			chip.Add(layout.R(rc.X0+i*regionNM, rc.Y0, rc.X1+i*regionNM, rc.Y1))
		}
	}
	return chip
}
