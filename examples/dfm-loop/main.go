// DFM loop: detect hotspots, correct them, verify the fix.
//
// The paper motivates hotspot detection as a step inside the design-for-
// manufacturability loop. This example closes that loop on the synthetic
// substrate: a briefly-trained R-HSD model flags hotspot clips in a test
// region, rule-based OPC (internal/opc) biases the geometry inside the
// flagged clips, and the litho proxy re-verifies the corrected region.
//
// Run with: go run ./examples/dfm-loop
package main

import (
	"fmt"
	"log"

	"rhsd/internal/dataset"
	"rhsd/internal/eval"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
	"rhsd/internal/opc"
)

func main() {
	p := eval.FastProfile()
	p.HSD.TrainSteps = 400 // brief: this demo shows the loop, not peak accuracy

	spec := dataset.CaseSpecs(p.RegionNM)[0]
	data := dataset.Generate(spec, p.Litho, 8, 3)

	fmt.Println("training the detector briefly...")
	model, err := eval.TrainOurs(p.HSD, data.Train, nil)
	if err != nil {
		log.Fatal(err)
	}

	for i, r := range data.Test {
		before := len(r.Hotspots)
		sample := hsd.MakeSample(r.Layout, nil, p.HSD)
		dets := model.DetectionsNM(model.Detect(sample.Raster))

		// Correct only the geometry inside detected clips: OPC is
		// expensive at full-chip scale, so the detector's job is to focus
		// it (the paper's DFM-flow argument).
		flagged := layout.New(r.Layout.Bounds)
		untouched := layout.New(r.Layout.Bounds)
		for _, rc := range r.Layout.Rects {
			inDet := false
			for _, d := range dets {
				if rc.Overlaps(layout.R(int(d.Clip.X0), int(d.Clip.Y0), int(d.Clip.X1), int(d.Clip.Y1))) {
					inDet = true
					break
				}
			}
			if inDet {
				flagged.Add(rc)
			} else {
				untouched.Add(rc)
			}
		}
		res := opc.Correct(flagged, p.Litho, opc.DefaultConfig())

		merged := layout.New(r.Layout.Bounds)
		for _, rc := range untouched.Rects {
			merged.Add(rc)
		}
		for _, rc := range res.Corrected.Rects {
			merged.Add(rc)
		}
		after := len(p.Litho.Simulate(merged, merged.Bounds))

		fmt.Printf("region %d: %2d hotspots, %2d detections → OPC moved %3d edges → %2d hotspots remain\n",
			i, before, len(dets), res.MovedEdges, after)
	}
	fmt.Println("\n(residual hotspots are detector misses or geometry OPC cannot fix within mask rules)")
}
