// Ablation demo: a miniature Figure 10.
//
// The paper attributes concrete gains to three design choices — the
// encoder-decoder feature lift (+7% accuracy), L2 regularization (+2.2%)
// and the refinement stage (+5.88% accuracy, −59.2% false alarms). This
// example trains the four variants on a reduced workload and prints the
// comparison. For the full-scale ablation use `rhsd-bench -exp figure10`.
//
// Run with: go run ./examples/ablation
package main

import (
	"fmt"
	"log"

	"rhsd/internal/eval"
)

func main() {
	p := eval.FastProfile()
	// Reduced workload so the four variants train in a few minutes total.
	p.NTrain, p.NTest = 6, 4
	p.HSD.TrainSteps = 400

	fmt.Println("generating benchmark cases...")
	data := eval.LoadData(p)

	variants, err := eval.RunFigure10(p, data, func(s string) { fmt.Println(" ", s) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(eval.RenderFigure10(variants))
	fmt.Println("\n(shrunk workload — for the calibrated ablation run `rhsd-bench -exp figure10`)")
}
