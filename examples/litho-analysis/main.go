// Litho analysis: the ground-truth side of the benchmark.
//
// The paper's labels come from "industrial 7nm metal layer EUV lithography
// simulation under a given process window". This example walks the proxy
// simulator that substitutes for it: aerial images, process-window
// corners, dose margins and edge-placement error, on three canonical
// patterns — a safe relaxed array, a sub-resolution neck and a bridging
// pair.
//
// Run with: go run ./examples/litho-analysis
package main

import (
	"fmt"

	"rhsd/internal/layout"
	"rhsd/internal/litho"
)

func pattern(name string) *layout.Layout {
	l := layout.New(layout.R(0, 0, 512, 512))
	switch name {
	case "relaxed":
		for i := 0; i < 3; i++ {
			x := 60 + i*160
			l.Add(layout.R(x, 60, x+80, 452))
		}
	case "neck":
		l.Add(layout.R(240, 100, 252, 400)) // 12 nm line, below resolution
	case "bridge":
		l.Add(layout.R(180, 100, 248, 400))
		l.Add(layout.R(258, 100, 326, 400)) // 10 nm space
	}
	return l
}

func main() {
	m := litho.DefaultModel()
	fmt.Printf("litho proxy: %.0f nm/px raster, %.0f nm PSF, threshold %.2f, dose ±%.0f%%\n\n",
		m.PitchNM, m.SigmaNM, m.Threshold, m.DoseLatitude*100)

	for _, name := range []string{"relaxed", "neck", "bridge"} {
		l := pattern(name)
		window := l.Bounds

		hs := m.Simulate(l, window)
		rep := m.AnalyzeWindow(l, window, 20)
		mask := l.Rasterize(window, m.PitchNM)
		epe := m.EPEAtDose(mask, 1.0, 12)
		epeLow := m.EPEAtDose(mask, 1-m.DoseLatitude, 12)

		fmt.Printf("%-8s hotspots=%d  dose margin=%.3f  corners=%v\n",
			name, len(hs), rep.DoseMargin, rep.FailPerCorner)
		fmt.Printf("         EPE nominal: mean %.1f nm, max %.1f nm (unmatched %d)\n",
			epe.MeanNM, epe.MaxNM, epe.Unmatched)
		fmt.Printf("         EPE low-dose: mean %.1f nm, max %.1f nm (unmatched %d)\n",
			epeLow.MeanNM, epeLow.MaxNM, epeLow.Unmatched)
		for _, h := range hs {
			fmt.Printf("         %s at (%.0f, %.0f) nm\n", h.Kind, h.Center.CX(), h.Center.CY())
		}
		fmt.Println()
	}
	fmt.Println("the benchmark generator plants exactly these kinds of geometry and")
	fmt.Println("labels regions with Simulate — see internal/dataset.")
}
