// NMS demo: reproduces the Figure 5 scenario that motivates hotspot
// non-maximum suppression.
//
// Three candidate clips overlap: two share the same hotspot core, the
// third covers a *different* hotspot but its outer ring overlaps the
// best-scoring clip. Conventional whole-clip NMS throws the third clip
// away ("error dropout"); h-NMS keys suppression on the clips' core
// regions and keeps it.
//
// Run with: go run ./examples/nms
package main

import (
	"fmt"

	"rhsd/internal/geom"
	"rhsd/internal/hsd"
)

func main() {
	clips := []hsd.ScoredClip{
		{Clip: geom.RectCWH(50, 50, 30, 30), Score: 0.9}, // hotspot A, best
		{Clip: geom.RectCWH(53, 50, 30, 30), Score: 0.8}, // hotspot A, duplicate
		{Clip: geom.RectCWH(68, 50, 30, 30), Score: 0.5}, // hotspot B: body overlaps A's clip
	}
	fmt.Println("candidate clips (CS = classification score):")
	for i, c := range clips {
		fmt.Printf("  %d: centre (%.0f,%.0f) CS %.1f, core %v\n",
			i, c.Clip.CX(), c.Clip.CY(), c.Score, c.Clip.Core())
	}
	fmt.Printf("\nclip 0 vs clip 2: whole-clip IoU %.2f, core IoU %.2f\n",
		geom.IoU(clips[0].Clip, clips[2].Clip), geom.CoreIoU(clips[0].Clip, clips[2].Clip))

	conv := hsd.ConventionalNMS(clips, 0.2)
	fmt.Printf("\nconventional NMS (IoU > 0.2 suppressed): %d survivors\n", len(conv))
	for _, c := range conv {
		fmt.Printf("  kept CS %.1f at (%.0f,%.0f)\n", c.Score, c.Clip.CX(), c.Clip.CY())
	}

	hnms := hsd.HNMS(clips, 0.2)
	fmt.Printf("\nhotspot NMS (core IoU > 0.2 suppressed): %d survivors\n", len(hnms))
	for _, c := range hnms {
		fmt.Printf("  kept CS %.1f at (%.0f,%.0f)\n", c.Score, c.Clip.CX(), c.Clip.CY())
	}
	fmt.Println("\nh-NMS kept the CS-0.5 clip because its *core* covers a distinct hotspot —")
	fmt.Println("exactly the clip conventional NMS dropped in Figure 5(a).")
}
