// Full-chip scan: the motivating scenario of the paper's introduction.
//
// A conventional detector must slide a clip-sized window across the whole
// chip with core-sized strides and classify every window independently
// (Figure 1). The region-based detector covers the same area with a few
// large-region forward passes (Figure 2). This example builds a multi-
// region "chip", runs both flows with briefly-trained models and reports
// the wall-clock ratio — the mechanism behind the paper's ~45× average
// speedup claim.
//
// Run with: go run ./examples/fullchip-scan
package main

import (
	"fmt"
	"log"
	"time"

	"rhsd/internal/baseline/tcad"
	"rhsd/internal/dataset"
	"rhsd/internal/eval"
	"rhsd/internal/hsd"
	"rhsd/internal/layout"
)

func main() {
	p := eval.FastProfile()
	p.HSD.TrainSteps = 200 // brief: this example demonstrates throughput
	p.TCAD.TrainSteps = 200

	// Training data: a few regions of Case2.
	spec := dataset.CaseSpecs(p.RegionNM)[0]
	data := dataset.Generate(spec, p.Litho, 6, 0)

	fmt.Println("briefly training both detectors...")
	ours, err := eval.TrainOurs(p.HSD, data.Train, nil)
	if err != nil {
		log.Fatal(err)
	}
	conv := tcad.New(p.TCAD)
	conv.Train(data.Train)

	// Build a 3×3-region "chip" by stitching fresh regions.
	const tiles = 3
	chipNM := tiles * p.RegionNM
	chip := layout.New(layout.R(0, 0, chipNM, chipNM))
	stitched := dataset.Generate(spec, p.Litho, tiles*tiles, 0)
	var gt [][2]float64
	for ty := 0; ty < tiles; ty++ {
		for tx := 0; tx < tiles; tx++ {
			r := stitched.Train[ty*tiles+tx]
			offX, offY := tx*p.RegionNM, ty*p.RegionNM
			for _, rc := range r.Layout.Rects {
				chip.Add(layout.R(rc.X0+offX, rc.Y0+offY, rc.X1+offX, rc.Y1+offY))
			}
			for _, pt := range r.HotspotPoints() {
				gt = append(gt, [2]float64{pt[0] + float64(offX), pt[1] + float64(offY)})
			}
		}
	}
	fmt.Printf("chip: %d nm square, %d shapes, %d simulated hotspots\n\n",
		chipNM, len(chip.Rects), len(gt))

	// Region-based flow: overlapping region tiles, one pass each.
	start := time.Now()
	regionDets := ours.DetectLayout(chip, chip.Bounds)
	regionTime := time.Since(start)
	fmt.Printf("region-based flow: %4d detections in %8.3fs\n", len(regionDets), regionTime.Seconds())

	// Conventional flow: clip-sized windows at core stride over the chip.
	start = time.Now()
	convDets := scanConventional(conv, chip)
	convTime := time.Since(start)
	fmt.Printf("conventional flow: %4d detections in %8.3fs\n", len(convDets), convTime.Seconds())

	fmt.Printf("\nspeedup: %.1f× (clip windows scanned: %d vs region passes: %d)\n",
		convTime.Seconds()/regionTime.Seconds(),
		windowCount(conv.Config, chipNM), regionPasses(p.HSD, chipNM))
}

// scanConventional runs the TCAD clip classifier over the whole chip at
// core stride, the Figure-1 flow.
func scanConventional(d *tcad.Detector, chip *layout.Layout) []hsd.Detection {
	region := &dataset.Region{Layout: chip}
	var out []hsd.Detection
	for _, det := range d.DetectRegion(region) {
		out = append(out, hsd.Detection{Clip: det.Clip, Score: det.Score})
	}
	return out
}

func windowCount(c tcad.Config, chipNM int) int {
	stride := c.ClipNM() / 3
	n := int((float64(chipNM) - c.ClipNM()) / stride)
	return (n + 1) * (n + 1)
}

func regionPasses(c hsd.Config, chipNM int) int {
	stride := c.RegionNM() - int(c.ClipNM())
	n := (chipNM + stride - 1) / stride
	return n * n
}
